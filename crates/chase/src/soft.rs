//! Soft rules — the paper's first future-work item ("extend MRLs to soft
//! rules that return the probability of ER").
//!
//! The boolean chase treats every deduced match as certain. The *soft chase*
//! instead assigns each fact a confidence in `(0, 1]` and propagates it
//! through derivations:
//!
//! - an ML predicate contributes its classifier **probability** (not its
//!   thresholded decision),
//! - equality and constant predicates contribute 1,
//! - a rule firing scores its head as
//!   `min(confidences of all body id/ML facts, probabilities of all body ML
//!   predicates)` — the weakest link of the derivation,
//! - a fact's confidence is the **max over all derivations** (best proof
//!   wins), seeded with 1 for the reflexive facts.
//!
//! The fixpoint exists and is unique: confidences are drawn from the finite
//! set of products of observed probabilities, updates are monotone
//! (max-of-min), and the iteration is a standard fixed point over a complete
//! lattice — the soft analogue of the Church–Rosser argument. Facts below
//! `min_confidence` are dropped, which makes the soft chase *non-monotone
//! in the threshold* but deterministic for a fixed one.
//!
//! The implementation deliberately reuses the boolean engine's compiled
//! plans and enumerator; it runs the fixpoint by repeated full rounds
//! (naive-chase style), which is the right trade-off for the ranked-output
//! use case: you run it once at the end, on the tuples you care about.

use crate::eval::{enumerate_with_program, EvalScratch, ValuationSink};
use crate::facts::MlSigTable;
use crate::plan::{CompiledHead, CompiledRule, RecPred};
use crate::program::RuleProgram;
use dcer_ml::MlRegistry;
use dcer_mrl::RuleSet;
use dcer_relation::{Dataset, IndexSet, Tid, Tuple};
use std::collections::HashMap;

/// A scored fact key: id match or validated ML prediction, canonical order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SoftFact {
    /// Match between two entities.
    Id(Tid, Tid),
    /// Validated prediction of a signature on a pair.
    Ml(u16, Tid, Tid),
}

impl SoftFact {
    fn id(a: Tid, b: Tid) -> SoftFact {
        if a <= b {
            SoftFact::Id(a, b)
        } else {
            SoftFact::Id(b, a)
        }
    }
    fn ml(sig: u16, a: Tid, b: Tid, symmetric: bool) -> SoftFact {
        if symmetric && b < a {
            SoftFact::Ml(sig, b, a)
        } else {
            SoftFact::Ml(sig, a, b)
        }
    }
}

/// Result of a soft chase: confidences per fact.
#[derive(Debug, Default)]
pub struct SoftOutcome {
    /// Fact → best-derivation confidence (≥ the run's `min_confidence`).
    pub confidence: HashMap<SoftFact, f64>,
    /// Rounds until the fixpoint.
    pub rounds: usize,
}

impl SoftOutcome {
    /// Confidence of a match (reflexive pairs score 1).
    pub fn match_confidence(&self, a: Tid, b: Tid) -> f64 {
        if a == b {
            return 1.0;
        }
        self.confidence.get(&SoftFact::id(a, b)).copied().unwrap_or(0.0)
    }

    /// Matches sorted by descending confidence — the ranked output the
    /// paper's future-work remark asks for.
    pub fn ranked_matches(&self) -> Vec<(Tid, Tid, f64)> {
        let mut out: Vec<(Tid, Tid, f64)> = self
            .confidence
            .iter()
            .filter_map(|(f, &c)| match f {
                SoftFact::Id(a, b) => Some((*a, *b, c)),
                SoftFact::Ml(..) => None,
            })
            .collect();
        out.sort_by(|x, y| y.2.partial_cmp(&x.2).unwrap().then(x.0.cmp(&y.0)).then(x.1.cmp(&y.1)));
        out
    }
}

/// Probability-returning oracle with a memo (the soft counterpart of the
/// boolean [`MlOracle`]).
struct ProbOracle {
    models: Vec<std::sync::Arc<dyn dcer_ml::MlModel>>,
    memo: HashMap<(u16, Tid, Tid), f64>,
}

impl ProbOracle {
    fn new(rules: &RuleSet, registry: &MlRegistry) -> Result<ProbOracle, String> {
        let mut models = Vec::new();
        for name in rules.model_names() {
            models.push(
                registry
                    .get(name)
                    .ok_or_else(|| format!("ML model `{name}` not registered"))?
                    .clone(),
            );
        }
        Ok(ProbOracle { models, memo: HashMap::new() })
    }

    fn probability(&mut self, table: &MlSigTable, sig_id: u16, l: &Tuple, r: &Tuple) -> f64 {
        let sig = table.sig(sig_id);
        let key = if sig.is_symmetric() && r.tid < l.tid {
            (sig_id, r.tid, l.tid)
        } else {
            (sig_id, l.tid, r.tid)
        };
        if let Some(&p) = self.memo.get(&key) {
            return p;
        }
        let (a, b) = if key.1 == l.tid { (l, r) } else { (r, l) };
        let lv: Vec<_> = sig.left.1.iter().map(|&x| a.get(x).clone()).collect();
        let rv: Vec<_> = sig.right.1.iter().map(|&x| b.get(x).clone()).collect();
        let p = self.models[sig.model as usize].probability(&lv, &rv).clamp(0.0, 1.0);
        self.memo.insert(key, p);
        p
    }
}

/// Run the soft chase to its confidence fixpoint.
///
/// `min_confidence` prunes derivations as soon as their weakest link drops
/// below it (so it also bounds the work); the returned facts all score at
/// least it.
pub fn soft_chase(
    dataset: &Dataset,
    rules: &RuleSet,
    registry: &MlRegistry,
    min_confidence: f64,
) -> Result<SoftOutcome, String> {
    let sigs = MlSigTable::build(rules);
    let plans = CompiledRule::compile_all(rules, &sigs);
    let mut oracle = ProbOracle::new(rules, registry)?;
    let mut indexes = IndexSet::new();
    let mut confidence: HashMap<SoftFact, f64> = HashMap::new();
    let min_confidence = min_confidence.clamp(f64::MIN_POSITIVE, 1.0);

    // The data never changes during the fixpoint, so each plan's access
    // program is compiled exactly once and reused every round.
    let programs: Vec<RuleProgram> =
        plans.iter().map(|p| RuleProgram::compile(p, dataset, &mut indexes)).collect();
    let mut scratch = EvalScratch::new();

    let mut rounds = 0;
    loop {
        rounds += 1;
        let mut changed = false;
        for (plan, program) in plans.iter().zip(&programs) {
            let mut sink = SoftSink {
                plan,
                dataset,
                sigs: &sigs,
                oracle: &mut oracle,
                confidence: &mut confidence,
                min_confidence,
                changed: &mut changed,
            };
            enumerate_with_program(program, plan, dataset, &indexes, &[], &mut scratch, &mut sink);
        }
        if !changed {
            break;
        }
        // Safety valve: confidences only increase and are bounded by the
        // finite set of classifier outputs, so this terminates; the valve
        // guards against pathological float behaviour.
        if rounds > 64 {
            break;
        }
    }
    Ok(SoftOutcome { confidence, rounds })
}

struct SoftSink<'a> {
    plan: &'a CompiledRule,
    dataset: &'a Dataset,
    sigs: &'a MlSigTable,
    oracle: &'a mut ProbOracle,
    confidence: &'a mut HashMap<SoftFact, f64>,
    min_confidence: f64,
    changed: &'a mut bool,
}

impl SoftSink<'_> {
    fn tuple(&self, v: dcer_mrl::TupleVar, rows: &[u32]) -> &Tuple {
        &self.dataset.relation(self.plan.atoms[v.0 as usize]).tuples()[rows[v.0 as usize] as usize]
    }

    fn id_confidence(&self, a: Tid, b: Tid) -> f64 {
        if a == b {
            return 1.0;
        }
        self.confidence.get(&SoftFact::id(a, b)).copied().unwrap_or(0.0)
    }
}

impl ValuationSink for SoftSink<'_> {
    fn prune_rec(&mut self, pred: &RecPred, left: &Tuple, right: &Tuple) -> bool {
        // Prune branches whose weakest link is already below threshold.
        let score = match *pred {
            RecPred::Id { .. } => self.id_confidence(left.tid, right.tid),
            RecPred::Ml { sig, symmetric, .. } => {
                let validated = self
                    .confidence
                    .get(&SoftFact::ml(sig, left.tid, right.tid, symmetric))
                    .copied()
                    .unwrap_or(0.0);
                validated.max(self.oracle.probability(self.sigs, sig, left, right))
            }
        };
        score < self.min_confidence
    }

    fn visit(&mut self, rows: &[u32]) {
        // Derivation confidence: min over recursive predicates.
        let mut conf: f64 = 1.0;
        for p in &self.plan.rec_preds {
            let (l, r) = p.vars();
            let (lt, rt) = (self.tuple(l, rows).clone(), self.tuple(r, rows).clone());
            let score = match *p {
                RecPred::Id { .. } => self.id_confidence(lt.tid, rt.tid),
                RecPred::Ml { sig, symmetric, .. } => {
                    let validated = self
                        .confidence
                        .get(&SoftFact::ml(sig, lt.tid, rt.tid, symmetric))
                        .copied()
                        .unwrap_or(0.0);
                    validated.max(self.oracle.probability(self.sigs, sig, &lt, &rt))
                }
            };
            conf = conf.min(score);
            if conf < self.min_confidence {
                return;
            }
        }
        let (key, _symmetric) = match self.plan.head {
            CompiledHead::Id(l, r) => {
                let (a, b) = (self.tuple(l, rows).tid, self.tuple(r, rows).tid);
                if a == b {
                    return;
                }
                (SoftFact::id(a, b), true)
            }
            CompiledHead::Ml { sig, left, right, symmetric } => {
                let (a, b) = (self.tuple(left, rows).tid, self.tuple(right, rows).tid);
                if a == b {
                    return;
                }
                (SoftFact::ml(sig, a, b, symmetric), symmetric)
            }
        };
        let entry = self.confidence.entry(key).or_insert(0.0);
        if conf > *entry + 1e-12 {
            *entry = conf;
            *self.changed = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcer_ml::{MlModel, MlRegistry};
    use dcer_relation::{Catalog, RelationSchema, Value, ValueType};
    use std::sync::Arc;

    /// A classifier with a fixed probability per left-value prefix, so
    /// tests control the probabilities exactly.
    struct Table(Vec<(&'static str, f64)>);
    impl MlModel for Table {
        fn probability(&self, left: &[Value], right: &[Value]) -> f64 {
            let key = format!("{}|{}", left[0], right[0]);
            let rkey = format!("{}|{}", right[0], left[0]);
            self.0.iter().find(|(k, _)| *k == key || *k == rkey).map(|(_, p)| *p).unwrap_or(0.0)
        }
    }

    fn catalog() -> Arc<Catalog> {
        Arc::new(
            Catalog::from_schemas(vec![RelationSchema::of(
                "R",
                &[("k", ValueType::Str), ("x", ValueType::Str)],
            )])
            .unwrap(),
        )
    }

    #[test]
    fn ml_probability_becomes_match_confidence() {
        let cat = catalog();
        let mut d = Dataset::new(cat.clone());
        let a = d.insert(0, vec!["ka".into(), "x".into()]).unwrap();
        let b = d.insert(0, vec!["kb".into(), "x".into()]).unwrap();
        let c = d.insert(0, vec!["kc".into(), "x".into()]).unwrap();
        let rules = dcer_mrl::parse_rules(
            &cat,
            "match r: R(t), R(s), t.x = s.x, m(t.k, s.k) -> t.id = s.id",
        )
        .unwrap();
        let mut reg = MlRegistry::new();
        reg.register("m", Arc::new(Table(vec![("ka|kb", 0.9), ("kb|kc", 0.6)])));
        let out = soft_chase(&d, &rules, &reg, 0.5).unwrap();
        assert!((out.match_confidence(a, b) - 0.9).abs() < 1e-9);
        assert!((out.match_confidence(b, c) - 0.6).abs() < 1e-9);
        // (a, c) has no direct derivation and no transitive rule: absent.
        assert_eq!(out.match_confidence(a, c), 0.0);
        let ranked = out.ranked_matches();
        assert_eq!(ranked[0].2, 0.9);
        assert_eq!(ranked[1].2, 0.6);
    }

    #[test]
    fn recursion_takes_the_weakest_link() {
        // base scores pairs by ML; step propagates through id matches, so
        // the derived match's confidence is the min along the chain.
        let cat = catalog();
        let mut d = Dataset::new(cat.clone());
        let a = d.insert(0, vec!["ka".into(), "x1".into()]).unwrap();
        let b = d.insert(0, vec!["kb".into(), "x1".into()]).unwrap();
        let c = d.insert(0, vec!["kc".into(), "x2".into()]).unwrap();
        let rules = dcer_mrl::parse_rules(
            &cat,
            r#"match base: R(t), R(s), t.x = s.x, m(t.k, s.k) -> t.id = s.id;
               match step: R(t), R(s), R(u), t.id = s.id, mstep(s.k, u.k) -> t.id = u.id"#,
        )
        .unwrap();
        let mut reg = MlRegistry::new();
        reg.register("m", Arc::new(Table(vec![("ka|kb", 0.8)])));
        reg.register("mstep", Arc::new(Table(vec![("kb|kc", 0.7)])));
        let out = soft_chase(&d, &rules, &reg, 0.1).unwrap();
        assert!((out.match_confidence(a, b) - 0.8).abs() < 1e-9);
        // a~c derived from a~b (0.8) and mstep(b,c) (0.7): min = 0.7.
        assert!((out.match_confidence(a, c) - 0.7).abs() < 1e-9, "{}", out.match_confidence(a, c));
        assert!(out.rounds >= 2);
    }

    #[test]
    fn best_derivation_wins() {
        // Two derivations for the same pair: direct (0.6) and via a
        // stronger chain (0.9 then 0.85) -> confidence 0.85.
        let cat = catalog();
        let mut d = Dataset::new(cat.clone());
        let a = d.insert(0, vec!["ka".into(), "x".into()]).unwrap();
        let b = d.insert(0, vec!["kb".into(), "x".into()]).unwrap();
        let c = d.insert(0, vec!["kc".into(), "x".into()]).unwrap();
        let rules = dcer_mrl::parse_rules(
            &cat,
            r#"match base: R(t), R(s), t.x = s.x, m(t.k, s.k) -> t.id = s.id;
               match step: R(t), R(s), R(u), t.id = s.id, m(s.k, u.k) -> t.id = u.id"#,
        )
        .unwrap();
        let mut reg = MlRegistry::new();
        reg.register("m", Arc::new(Table(vec![("ka|kc", 0.6), ("ka|kb", 0.9), ("kb|kc", 0.85)])));
        let out = soft_chase(&d, &rules, &reg, 0.1).unwrap();
        assert!((out.match_confidence(a, c) - 0.85).abs() < 1e-9);
        let _ = (a, b);
    }

    #[test]
    fn threshold_prunes_low_confidence_derivations() {
        let cat = catalog();
        let mut d = Dataset::new(cat.clone());
        let a = d.insert(0, vec!["ka".into(), "x".into()]).unwrap();
        let b = d.insert(0, vec!["kb".into(), "x".into()]).unwrap();
        let rules = dcer_mrl::parse_rules(
            &cat,
            "match r: R(t), R(s), t.x = s.x, m(t.k, s.k) -> t.id = s.id",
        )
        .unwrap();
        let mut reg = MlRegistry::new();
        reg.register("m", Arc::new(Table(vec![("ka|kb", 0.4)])));
        let out = soft_chase(&d, &rules, &reg, 0.5).unwrap();
        assert_eq!(out.match_confidence(a, b), 0.0);
        assert!(out.ranked_matches().is_empty());
    }

    #[test]
    fn boolean_chase_is_the_threshold_projection() {
        // Facts the boolean chase deduces are exactly the soft facts at or
        // above the classifiers' decision thresholds (here: threshold 0.5
        // classifiers and min_confidence 0.5).
        let cat = catalog();
        let mut d = Dataset::new(cat.clone());
        for (k, x) in [("ka", "x"), ("kb", "x"), ("kc", "x"), ("kd", "y")] {
            d.insert(0, vec![k.into(), x.into()]).unwrap();
        }
        let rules = dcer_mrl::parse_rules(
            &cat,
            "match r: R(t), R(s), t.x = s.x, m(t.k, s.k) -> t.id = s.id",
        )
        .unwrap();
        let mut reg = MlRegistry::new();
        reg.register("m", Arc::new(Table(vec![("ka|kb", 0.9), ("kb|kc", 0.3), ("ka|kc", 0.55)])));
        let soft = soft_chase(&d, &rules, &reg, 0.5).unwrap();
        let hard = crate::naive::naive_chase(&d, &rules, &reg).unwrap();
        let mut hard = hard;
        for (a, b, conf) in soft.ranked_matches() {
            assert!(hard.holds_id(a, b), "soft fact {a}~{b} ({conf}) missing from boolean chase");
        }
        // kb~kc holds in the boolean chase only via transitive closure
        // (ka~kb and ka~kc both fire); kd (different x) never joins.
        assert!(hard.holds_id(Tid::new(0, 1), Tid::new(0, 2)));
        assert!(!hard.holds_id(Tid::new(0, 0), Tid::new(0, 3)));
    }
}
