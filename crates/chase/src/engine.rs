//! The sequential `Match` algorithm (paper Fig. 3) and its incremental core
//! `IncDeduce` (Fig. 4) — which double as the per-worker partial-evaluation
//! (`A`) and incremental (`A_Δ`) algorithms of the parallel `DMatch`.
//!
//! ## How the two phases divide the work
//!
//! Because the *data* never changes during the chase — only the id/ML fact
//! set `Γ` grows — the support valuations (those satisfying the atoms,
//! constant and equality predicates) are fixed. `Deduce` enumerates them
//! once with inverted indices:
//!
//! - valuations whose recursive predicates all hold **fire** their head;
//! - valuations blocked only on *waitable* recursive predicates (id
//!   predicates, or ML predicates some rule head can validate) are recorded
//!   in the dependency store `H` as `l₁ ∧ … ∧ l_n → l`;
//! - valuations blocked on an unwaitable false ML predicate are dead and
//!   pruned during enumeration.
//!
//! `IncDeduce` then never re-runs full joins: it fires dependencies whose
//! antecedents became valid. Only if `H` overflowed its capacity `K` does it
//! fall back to update-driven join re-evaluation seeded by the new facts in
//! `ΔΓ` — exactly the two strategies of Fig. 4 (lines 2-3 vs lines 4-7).

use crate::batch::DeltaBatch;
use crate::deps::{DepStore, Pending, Ready};
use crate::eval::{
    enumerate_with_program, enumerate_with_program_batched, EvalScratch, ValuationSink,
};
use crate::facts::{ChaseState, Fact, MlOracle, MlSigTable};
use crate::plan::{CompiledHead, CompiledRule, RecPred};
use crate::program::RuleProgram;
use crate::support::{Provenance, SupportLog};
use crate::union_find::MatchSet;
use dcer_ml::MlRegistry;
use dcer_mrl::{RuleSet, TupleVar};
use dcer_relation::{Dataset, IndexSet, RelId, Tid, Tuple};
use std::collections::{HashMap, HashSet, VecDeque};

/// Tuning knobs for the engine.
#[derive(Debug, Clone)]
pub struct ChaseConfig {
    /// Capacity `K` of the dependency store `H`. Correctness never depends
    /// on it; small values exercise the update-driven fallback.
    pub dep_capacity: usize,
    /// When `false`, skip `H` entirely and always use update-driven join
    /// re-evaluation (used to cross-validate the two `IncDeduce` paths).
    pub use_dep_cache: bool,
    /// Share one ML memo scope across every rule (and every evaluation
    /// path — scalar probes and batched windows hit the same cache), so
    /// rules with the same predicate signature never re-score a pair (an
    /// MQO-style evaluation sharing). `false` reproduces the per-rule
    /// evaluation of `DMatch_noMQO`.
    pub share_ml_across_rules: bool,
    /// Evaluate ML and id predicates over columnar candidate windows
    /// ([`crate::eval::enumerate_with_program_batched`]) instead of
    /// per-candidate probes. Bit-identical outcomes, counters included;
    /// `false` forces the scalar path.
    pub use_batching: bool,
    /// Candidate window width for batched evaluation (clamped to ≥ 1;
    /// ignored when `use_batching` is off).
    pub batch_size: usize,
}

impl Default for ChaseConfig {
    fn default() -> ChaseConfig {
        ChaseConfig {
            dep_capacity: 1 << 20,
            use_dep_cache: true,
            share_ml_across_rules: true,
            use_batching: true,
            batch_size: 1024,
        }
    }
}

/// Counters reported by the engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct ChaseStats {
    /// Complete support valuations visited.
    pub valuations: u64,
    /// Facts newly deduced (id matches + validated predictions).
    pub facts_deduced: u64,
    /// Dependencies recorded in `H`.
    pub deps_recorded: u64,
    /// Dependencies fired from `H`.
    pub deps_fired: u64,
    /// Dependencies dropped because `H` was full.
    pub deps_dropped: u64,
    /// Seeded (update-driven) join re-evaluations.
    pub seeded_joins: u64,
    /// Real ML classifier invocations.
    pub ml_calls: u64,
    /// ML memo-cache hits.
    pub ml_cache_hits: u64,
    /// `IncDeduce` rounds executed.
    pub rounds: u64,
    /// Facts received from peers via `IncDeduce`.
    pub facts_received: u64,
    /// Received facts already known locally (absorbed, not re-applied).
    pub facts_absorbed: u64,
}

impl ChaseStats {
    /// Pointwise sum (aggregating worker stats).
    pub fn add(&mut self, other: &ChaseStats) {
        self.valuations += other.valuations;
        self.facts_deduced += other.facts_deduced;
        self.deps_recorded += other.deps_recorded;
        self.deps_fired += other.deps_fired;
        self.deps_dropped += other.deps_dropped;
        self.seeded_joins += other.seeded_joins;
        self.ml_calls += other.ml_calls;
        self.ml_cache_hits += other.ml_cache_hits;
        self.rounds += other.rounds;
        self.facts_received += other.facts_received;
        self.facts_absorbed += other.facts_absorbed;
    }

    /// Publish these counters into the global [`dcer_obs`] registry under
    /// `chase.*`, labeled with the worker index when given (no-op unless a
    /// recorder is installed).
    pub fn publish(&self, worker: Option<u32>) {
        if !dcer_obs::enabled() {
            return;
        }
        let add = |name, value| match worker {
            Some(w) => dcer_obs::counter_add_labeled(name, w, value),
            None => dcer_obs::counter_add(name, value),
        };
        add("chase.valuations", self.valuations);
        add("chase.facts_deduced", self.facts_deduced);
        add("chase.deps.recorded", self.deps_recorded);
        add("chase.deps.fired", self.deps_fired);
        add("chase.deps.dropped", self.deps_dropped);
        add("chase.seeded_joins", self.seeded_joins);
        add("chase.ml_calls", self.ml_calls);
        add("chase.ml_cache_hits", self.ml_cache_hits);
        add("chase.rounds", self.rounds);
        add("chase.facts_received", self.facts_received);
        add("chase.facts_absorbed", self.facts_absorbed);
    }
}

/// The result of a chase run: the paper's `Γ`.
#[derive(Debug)]
pub struct ChaseOutcome {
    /// Deduced matches with transitive closure.
    pub matches: MatchSet,
    /// Validated ML predictions.
    pub validated: HashSet<Fact>,
    /// Work counters.
    pub stats: ChaseStats,
}

/// A new-fact event queued for update-driven processing; for id facts the
/// two pre-merge classes bound the newly-true id pairs.
#[derive(Debug)]
struct DeltaEvent {
    fact: Fact,
    side_a: Vec<Tid>,
    side_b: Vec<Tid>,
}

/// What kind of re-derivation the next [`ChaseEngine::update_fixpoint`]
/// must run for the changes staged so far.
#[derive(Debug)]
enum Dirty {
    /// A retraction cascade dropped facts: the surviving dependency store
    /// and delta queue can reference antecedents that no longer hold, so
    /// both are discarded and a full `Deduce` round re-enumerates (already
    /// known facts are absorbed as cheap no-ops; only facts with surviving
    /// alternative support come back).
    Full,
    /// Only inserts happened: seed rule re-evaluation on the new rows.
    Seeds(Vec<(RelId, u32)>),
    /// Nothing staged.
    None,
}

/// The fact-level effect of one [`ChaseEngine::apply_update`] call.
#[derive(Debug, Default)]
pub struct UpdateDelta {
    /// Facts retracted by the deletion cascade and not rederived.
    pub retracted: Vec<Fact>,
    /// Facts newly deduced (including rederivations of over-deleted facts
    /// that had surviving alternative support).
    pub deduced: Vec<Fact>,
}

/// The `Match` engine over one dataset (or HyPart fragment).
pub struct ChaseEngine {
    plans: Vec<CompiledRule>,
    /// Compiled access programs, one per plan, built lazily against the
    /// current index generation (cleared with the indexes).
    programs: Vec<Option<RuleProgram>>,
    /// Reusable enumeration scratch shared by every `run_plan` call.
    scratch: EvalScratch,
    sigs: MlSigTable,
    dataset: Dataset,
    indexes: IndexSet,
    state: ChaseState,
    deps: DepStore,
    oracle: MlOracle,
    /// Fire-ordered provenance of every fact in `state` (see
    /// [`SupportLog`]); drives the deletion cascade.
    log: SupportLog,
    /// Re-derivation obligation accumulated by staged updates.
    dirty: Dirty,
    pending: VecDeque<DeltaEvent>,
    /// rel -> [(plan, rec_pred index)] for body id predicates.
    id_pred_index: HashMap<RelId, Vec<(usize, usize)>>,
    /// sig -> [(plan, rec_pred index)] for body ML predicates.
    ml_pred_index: HashMap<u16, Vec<(usize, usize)>>,
    use_dep_cache: bool,
    share_ml_across_rules: bool,
    /// Candidate window width for batched evaluation; `None` = scalar path.
    batch: Option<usize>,
    /// Pool for chunking large classifier miss-batches (see
    /// [`MlOracle::predict_batch`]); absent = score inline.
    pool: Option<std::sync::Arc<dcer_pool::WorkPool>>,
    /// Observed `(checked, pruned)` per plan per recursive predicate,
    /// accumulated by the sink's prune paths — the selectivity input to
    /// [`RuleProgram::reorder_rec_checks`]. Identical for scalar and
    /// batched evaluation (same probe multisets), so both orderings evolve
    /// in lockstep.
    rec_stats: Vec<Vec<(u64, u64)>>,
    /// Per-tuple rule masks from HyPart: when set, rule `i` only binds
    /// tuples whose mask has bit `min(i, 127)`.
    rule_scope: Option<std::sync::Arc<HashMap<Tid, u128>>>,
    stats: ChaseStats,
}

impl ChaseEngine {
    /// Build an engine for `dataset` with rule set `rules`, binding ML
    /// models from `registry`.
    pub fn new(
        dataset: Dataset,
        rules: &RuleSet,
        registry: &MlRegistry,
        config: &ChaseConfig,
    ) -> Result<ChaseEngine, String> {
        let sigs = MlSigTable::build(rules);
        let plans = CompiledRule::compile_all(rules, &sigs);
        let oracle = MlOracle::new(rules, registry)?;
        let mut id_pred_index: HashMap<RelId, Vec<(usize, usize)>> = HashMap::new();
        let mut ml_pred_index: HashMap<u16, Vec<(usize, usize)>> = HashMap::new();
        for (pi, plan) in plans.iter().enumerate() {
            for (ri, p) in plan.rec_preds.iter().enumerate() {
                match p {
                    RecPred::Id { left, .. } => {
                        id_pred_index
                            .entry(plan.atoms[left.0 as usize])
                            .or_default()
                            .push((pi, ri));
                    }
                    RecPred::Ml { sig, .. } => {
                        ml_pred_index.entry(*sig).or_default().push((pi, ri));
                    }
                }
            }
        }
        let capacity = if config.use_dep_cache { config.dep_capacity } else { 0 };
        let rec_stats = plans.iter().map(|p| vec![(0, 0); p.rec_preds.len()]).collect();
        Ok(ChaseEngine {
            programs: vec![None; plans.len()],
            scratch: EvalScratch::new(),
            plans,
            sigs,
            dataset,
            indexes: IndexSet::new(),
            state: ChaseState::new(),
            deps: DepStore::new(capacity),
            oracle,
            log: SupportLog::new(),
            dirty: Dirty::None,
            pending: VecDeque::new(),
            id_pred_index,
            ml_pred_index,
            use_dep_cache: config.use_dep_cache,
            share_ml_across_rules: config.share_ml_across_rules,
            batch: config.use_batching.then_some(config.batch_size.max(1)),
            pool: None,
            rec_stats,
            rule_scope: None,
            stats: ChaseStats::default(),
        })
    }

    /// Let batched predicate evaluation chunk large classifier
    /// miss-batches across this pool's threads. Purely a scheduling choice:
    /// answers, memo contents and counters are identical with or without a
    /// pool (chunk boundaries are fixed, not pool-derived).
    pub fn set_pool(&mut self, pool: std::sync::Arc<dcer_pool::WorkPool>) {
        self.pool = Some(pool);
    }

    /// The fragment this engine operates on.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// Scope each rule's evaluation to the tuples HyPart distributed for it
    /// (see [`dcer_relation::Tid`]-keyed masks in the partition result).
    /// Tuples absent from the map are admitted for every rule.
    pub fn set_rule_scope(&mut self, masks: std::sync::Arc<HashMap<Tid, u128>>) {
        self.rule_scope = Some(masks);
    }

    /// Extend the rule scope with masks for routed delta tuples (no-op on an
    /// unscoped engine, which admits every tuple for every rule anyway).
    /// Masks for already-scoped tuples are OR-ed in. A mask of `0` leaves the
    /// tuple inert — the router found no rule geometry admitting it, so no
    /// valuation here may bind it.
    pub fn extend_rule_scope(&mut self, additions: &[(Tid, u128)]) {
        if additions.is_empty() {
            return;
        }
        if let Some(masks) = &mut self.rule_scope {
            let map = std::sync::Arc::make_mut(masks);
            for &(tid, mask) in additions {
                *map.entry(tid).or_insert(0) |= mask;
            }
        }
    }

    /// Build every index the compiled rule programs will probe — derived in
    /// exact compile order (per plan: constant filters, then equality
    /// edges) — on up to `threads` scoped threads via
    /// [`IndexSet::build_all`], then compile all programs eagerly.
    ///
    /// Calling this is purely a scheduling choice: slots, dictionary codes
    /// and programs come out identical to the lazy per-`deduce` path, but
    /// the hash-and-intern passes over the fragment run in parallel instead
    /// of serially inside the first superstep.
    pub fn prebuild_indexes(&mut self, threads: usize) {
        self.prebuild_on(|indexes, dataset, keys| indexes.build_all(dataset, keys, threads));
    }

    /// [`ChaseEngine::prebuild_indexes`] on a shared [`dcer_pool::WorkPool`]
    /// instead of a transient one — the path the pipeline uses so every
    /// index build reuses the session's pool threads.
    pub fn prebuild_indexes_on(&mut self, pool: &dcer_pool::WorkPool) {
        self.prebuild_on(|indexes, dataset, keys| indexes.build_all_on(dataset, keys, pool));
    }

    fn prebuild_on(
        &mut self,
        build: impl FnOnce(&mut IndexSet, &Dataset, &[(RelId, dcer_relation::AttrId)]),
    ) {
        // "chase.index_build" is the IndexBuild phase tag the causal
        // profiler attributes separately from Deduce-phase chase spans.
        let _span = dcer_obs::span("chase.index_build");
        let mut keys: Vec<(RelId, dcer_relation::AttrId)> = Vec::new();
        for plan in &self.plans {
            for (v, filters) in plan.const_filters.iter().enumerate() {
                for (attr, _) in filters {
                    keys.push((plan.atoms[v], *attr));
                }
            }
            for e in &plan.eq_edges {
                keys.push((plan.atoms[e.left.0 .0 as usize], e.left.1));
                keys.push((plan.atoms[e.right.0 .0 as usize], e.right.1));
            }
        }
        build(&mut self.indexes, &self.dataset, &keys);
        for plan_idx in 0..self.plans.len() {
            if self.programs[plan_idx].is_none() {
                self.programs[plan_idx] = Some(RuleProgram::compile(
                    &self.plans[plan_idx],
                    &self.dataset,
                    &mut self.indexes,
                ));
            }
        }
    }

    /// Current chase state (read access for inspection).
    pub fn state_mut(&mut self) -> &mut ChaseState {
        &mut self.state
    }

    /// Read-only view of the fire-ordered support log — the provenance of
    /// every fact currently in the chase state (first derivations only,
    /// `External` for facts received in a BSP exchange). The serving layer
    /// exports this per snapshot so `explain` answers never touch the
    /// live engine.
    pub fn support_log(&self) -> &crate::support::SupportLog {
        &self.log
    }

    /// Snapshot of the counters (classifier counters refreshed).
    pub fn stats(&self) -> ChaseStats {
        let mut s = self.stats;
        s.ml_calls = self.oracle.calls();
        s.ml_cache_hits = self.oracle.hits();
        let (rec, fired, dropped) = self.deps.counters();
        s.deps_recorded = rec;
        s.deps_fired = fired;
        s.deps_dropped = dropped;
        s
    }

    /// Whether update-driven re-evaluation is required (dep cache disabled
    /// or overflowed).
    fn needs_delta_joins(&self) -> bool {
        !self.use_dep_cache || self.deps.overflowed()
    }

    /// `Match` (Fig. 3) as a batch: `Deduce` once, then `IncDeduce` to local
    /// fixpoint, emitting the canonical [`DeltaBatch`] of every fact newly
    /// deduced here. This is the partial-evaluation step `A` of the paper,
    /// and its output is what the BSP exchange routes to peers.
    pub fn deduce(&mut self) -> DeltaBatch {
        DeltaBatch::new(self.run_local_fixpoint())
    }

    /// `A_Δ` as a batch: absorb a batch received from peers (duplicates are
    /// counted and skipped, not re-applied), run `IncDeduce` to local
    /// fixpoint, and emit the batch of *locally* deduced new facts.
    pub fn incdeduce(&mut self, received: &DeltaBatch) -> DeltaBatch {
        DeltaBatch::new(self.apply_delta(received.as_slice()))
    }

    /// Vec-level form of [`ChaseEngine::deduce`]: `Deduce` once, then
    /// `IncDeduce` to local fixpoint. Returns every fact newly deduced here
    /// in deduction order.
    pub fn run_local_fixpoint(&mut self) -> Vec<Fact> {
        let mut out = Vec::new();
        {
            let _deduce = dcer_obs::span("chase.deduce");
            self.deduce_round(&mut out);
        }
        {
            let _inc = dcer_obs::span("chase.incdeduce");
            self.incdeduce_loop(&mut out);
        }
        dcer_obs::histogram_record("chase.delta_facts", out.len() as u64);
        out
    }

    /// Vec-level form of [`ChaseEngine::incdeduce`]: incorporate facts
    /// received from other workers, then run `IncDeduce` to local fixpoint.
    /// Returns only *locally* deduced new facts (the received ones are
    /// already known to the sender).
    pub fn apply_delta(&mut self, received: &[Fact]) -> Vec<Fact> {
        let _inc = dcer_obs::span("chase.incdeduce");
        dcer_obs::histogram_record("chase.recv_facts", received.len() as u64);
        self.stats.facts_received += received.len() as u64;
        for &f in received {
            if let Some((side_a, side_b)) = self.state.apply(f) {
                self.log.push(f, Provenance::External);
                self.pending.push_back(DeltaEvent { fact: f, side_a, side_b });
            } else {
                self.stats.facts_absorbed += 1;
            }
        }
        let mut out = Vec::new();
        self.incdeduce_loop(&mut out);
        dcer_obs::histogram_record("chase.delta_facts", out.len() as u64);
        out
    }

    /// Checkpoint the engine's durable deduction state as a canonical
    /// batch: validated ML facts plus a spanning set of id facts (see
    /// [`ChaseState::to_delta`]). Restoring via [`ChaseEngine::recover`]
    /// yields the same `E_id` closure and validated set.
    pub fn snapshot(&mut self) -> DeltaBatch {
        self.state.to_delta()
    }

    /// Crash recovery: discard the volatile chase state (Γ, the dependency
    /// store H, queued delta events) and rebuild by re-running the full
    /// local fixpoint over the fragment — repopulating H, which a bare
    /// state copy could not — then absorbing `checkpoint` (the last
    /// [`ChaseEngine::snapshot`], empty when there is none). Compiled rule
    /// programs, indexes and the ML oracle's memo survive: the fragment is
    /// immutable and the oracle is a pure cache, so recovery costs no
    /// classifier re-calls. Returns every fact the rebuilt engine deduces,
    /// for re-announcement to peers.
    pub fn recover(&mut self, checkpoint: &[Fact]) -> Vec<Fact> {
        let _span = dcer_obs::span("chase.recover");
        self.state = ChaseState::new();
        self.deps.reset();
        self.log.clear();
        self.dirty = Dirty::None;
        self.pending.clear();
        let mut out = self.run_local_fixpoint();
        out.extend(self.apply_delta(checkpoint));
        out
    }

    /// One full enumeration round over all rules (procedure `Deduce`).
    fn deduce_round(&mut self, out: &mut Vec<Fact>) {
        self.reorder_rec_checks();
        for pi in 0..self.plans.len() {
            let _rule =
                dcer_obs::span("chase.rule").with_arg("rule", self.plans[pi].rule_idx as u64);
            self.run_plan(pi, &[], out);
        }
    }

    /// Refresh each compiled program's recursive-check order from observed
    /// selectivity × model cost: rank a pruning (unwaitable ML) predicate
    /// by `cost_hint × (checked + 1) / (pruned + 1)` — expected cost paid
    /// per candidate eliminated — and keep non-pruning predicates (id, and
    /// waitable ML, whose falsity is not final) last in plan order. Called
    /// once per `Deduce` round, never mid-enumeration, so a round sees one
    /// consistent order; programs not yet compiled keep plan order until
    /// the next round.
    fn reorder_rec_checks(&mut self) {
        for (pi, program) in self.programs.iter_mut().enumerate() {
            let Some(program) = program else { continue };
            let plan = &self.plans[pi];
            let counters = &self.rec_stats[pi];
            program.reorder_rec_checks(|p| match plan.rec_preds[p as usize] {
                RecPred::Ml { sig, waitable: false, .. } => {
                    let (checked, pruned) = counters[p as usize];
                    self.oracle.model_cost(&self.sigs, sig) * (checked + 1) as f64
                        / (pruned + 1) as f64
                }
                _ => f64::INFINITY,
            });
        }
    }

    /// `IncDeduce` to fixpoint: alternate dependency firing with (when
    /// needed) update-driven seeded joins until quiescent.
    fn incdeduce_loop(&mut self, out: &mut Vec<Fact>) {
        loop {
            let _round = dcer_obs::span("chase.round").with_arg("round", self.stats.rounds);
            self.stats.rounds += 1;
            let mut progressed = false;
            // (1) Fire ready dependencies to exhaustion.
            loop {
                let ready = self.deps.collect_ready(&mut self.state);
                if ready.is_empty() {
                    break;
                }
                for dep in ready {
                    progressed |= self.commit(dep, out);
                }
            }
            // (2) Update-driven join re-evaluation, if `H` cannot be trusted
            // to be complete.
            if self.needs_delta_joins() {
                while let Some(ev) = self.pending.pop_front() {
                    progressed = true;
                    self.delta_join(&ev, out);
                }
            } else {
                self.pending.clear();
            }
            if !progressed {
                break;
            }
        }
    }

    /// Apply a fired dependency's head; on novelty, log its provenance,
    /// report it and queue its delta event.
    fn commit(&mut self, dep: Ready, out: &mut Vec<Fact>) -> bool {
        match self.state.apply(dep.head) {
            Some((side_a, side_b)) => {
                self.stats.facts_deduced += 1;
                out.push(dep.head);
                self.log.push(
                    dep.head,
                    Provenance::Local { support: dep.support, antecedents: dep.antecedents },
                );
                self.pending.push_back(DeltaEvent { fact: dep.head, side_a, side_b });
                true
            }
            None => false,
        }
    }

    /// Enumerate (optionally seeded) valuations of one plan, firing heads or
    /// recording dependencies.
    fn run_plan(&mut self, plan_idx: usize, seeds: &[(TupleVar, u32)], out: &mut Vec<Fact>) {
        // Compile the plan's access program once per index generation.
        if self.programs[plan_idx].is_none() {
            self.programs[plan_idx] =
                Some(RuleProgram::compile(&self.plans[plan_idx], &self.dataset, &mut self.indexes));
        }
        // Split borrows: the sink needs the mutable state/oracle/deps while
        // the enumerator walks dataset/indexes.
        let share_ml = self.share_ml_across_rules;
        let batch = self.batch;
        let ChaseEngine {
            plans,
            programs,
            scratch,
            sigs,
            dataset,
            indexes,
            state,
            deps,
            oracle,
            log,
            stats,
            pending,
            rule_scope,
            pool,
            rec_stats,
            ..
        } = self;
        let plan = &plans[plan_idx];
        let program = programs[plan_idx].as_ref().expect("compiled above");
        let rule_mask = 1u128 << plan.rule_idx.min(127);
        let ml_scope = if share_ml { 0 } else { plan.rule_idx as u16 + 1 };
        let mut sink = EngineSink {
            plan,
            dataset,
            sigs,
            state,
            deps,
            oracle,
            log,
            pending,
            out,
            scope: rule_scope.as_deref(),
            rule_mask,
            ml_scope,
            pool: pool.as_deref(),
            rec_stats: &mut rec_stats[plan_idx],
            facts_deduced: 0,
        };
        let visited = match batch {
            Some(width) => enumerate_with_program_batched(
                program, plan, dataset, indexes, seeds, scratch, &mut sink, width,
            ),
            None => {
                enumerate_with_program(program, plan, dataset, indexes, seeds, scratch, &mut sink)
            }
        };
        let newly = sink.facts_deduced;
        stats.valuations += visited;
        stats.facts_deduced += newly;
    }

    /// Update-driven re-evaluation for one new fact (Fig. 4, lines 4-7).
    fn delta_join(&mut self, ev: &DeltaEvent, out: &mut Vec<Fact>) {
        match ev.fact {
            Fact::Id(a, _) => {
                let rel = a.rel;
                let Some(entries) = self.id_pred_index.get(&rel).cloned() else {
                    return;
                };
                // Newly true id pairs are (x, y) with x, y on opposite
                // pre-merge sides; restrict to tuples hosted locally.
                let local =
                    |tid: &Tid| self.dataset.relation(rel).position(*tid).map(|p| (*tid, p));
                let xs: Vec<(Tid, u32)> = ev.side_a.iter().filter_map(local).collect();
                let ys: Vec<(Tid, u32)> = ev.side_b.iter().filter_map(local).collect();
                for (pi, ri) in entries {
                    let RecPred::Id { left, right } = self.plans[pi].rec_preds[ri] else {
                        continue;
                    };
                    if self.plans[pi].atoms[right.0 as usize] != rel {
                        continue;
                    }
                    for &(_, xr) in &xs {
                        for &(_, yr) in &ys {
                            self.stats.seeded_joins += 2;
                            self.run_plan(pi, &[(left, xr), (right, yr)], out);
                            self.run_plan(pi, &[(left, yr), (right, xr)], out);
                        }
                    }
                }
            }
            Fact::Ml(sig, a, b) => {
                let Some(entries) = self.ml_pred_index.get(&sig).cloned() else {
                    return;
                };
                for (pi, ri) in entries {
                    let RecPred::Ml { left, right, symmetric, .. } = self.plans[pi].rec_preds[ri]
                    else {
                        continue;
                    };
                    let seed_pairs: &[(Tid, Tid)] =
                        if symmetric { &[(a, b), (b, a)] } else { &[(a, b)] };
                    for &(x, y) in seed_pairs {
                        let (Some(xr), Some(yr)) = (
                            self.dataset
                                .relation(self.plans[pi].atoms[left.0 as usize])
                                .position(x),
                            self.dataset
                                .relation(self.plans[pi].atoms[right.0 as usize])
                                .position(y),
                        ) else {
                            continue;
                        };
                        self.stats.seeded_joins += 1;
                        self.run_plan(pi, &[(left, xr), (right, yr)], out);
                    }
                }
            }
        }
    }

    /// Incremental ER under data insertions — the `ΔD` extension sketched
    /// in the paper's Section V-A remark: add new tuples, then deduce
    /// exactly the consequences that involve them. Equivalent to
    /// [`ChaseEngine::apply_update`] with an empty delete set.
    pub fn insert_and_deduce(&mut self, tuples: Vec<dcer_relation::Tuple>) -> Vec<Fact> {
        self.stage_update(tuples, &[]);
        self.update_fixpoint()
    }

    /// Stage a CDC batch: mutate the fragment (tombstoning deletes in
    /// place), patch the inverted indices incrementally, invalidate only
    /// the compiled programs whose atoms touch a changed relation, and run
    /// the deletion cascade. Returns the facts retracted by the cascade
    /// (over-deletions included; [`ChaseEngine::update_fixpoint`] rederives
    /// the ones with surviving alternative support).
    ///
    /// Inserts replicating a tuple id already hosted — live *or*
    /// tombstoned — are skipped: deleted identities are never resurrected,
    /// new data must arrive under fresh ids.
    pub fn stage_update(
        &mut self,
        inserts: Vec<dcer_relation::Tuple>,
        deletes: &[Tid],
    ) -> Vec<Fact> {
        let mut changed: Vec<RelId> = Vec::new();
        let mut new_rows: Vec<(RelId, u32)> = Vec::with_capacity(inserts.len());
        let mut dead: HashSet<Tid> = HashSet::new();
        for &tid in deletes {
            if self.dataset.delete(tid) {
                dead.insert(tid);
                if !changed.contains(&tid.rel) {
                    changed.push(tid.rel);
                }
            }
        }
        for t in inserts {
            let rel = t.tid.rel;
            if self.dataset.relation(rel).contains(t.tid) {
                continue;
            }
            self.dataset.insert_replica(t);
            new_rows.push((rel, self.dataset.relation(rel).len() as u32 - 1));
            if !changed.contains(&rel) {
                changed.push(rel);
            }
        }
        if changed.is_empty() {
            return Vec::new();
        }
        // Patch the existing index slots in place (dictionary codes and
        // slot ids survive, so programs over *unchanged* relations stay
        // compiled — a program compiled dead against an unchanged relation
        // stays correct even if its constant is later interned by another
        // relation's update, since the unchanged relation has no row with
        // that value either way).
        self.indexes.apply_update(&self.dataset, &changed);
        for (pi, plan) in self.plans.iter().enumerate() {
            if plan.atoms.iter().any(|r| changed.contains(r)) {
                self.programs[pi] = None;
            }
        }
        let mut retracted = Vec::new();
        if !dead.is_empty() {
            // Dependencies supported by a dead tuple are vacuous; drop them
            // before they can fire, then cascade through the support log.
            self.deps.purge(&dead);
            retracted = self.cascade(&dead, &HashSet::new());
        }
        if !new_rows.is_empty() {
            match &mut self.dirty {
                Dirty::Full => {}
                Dirty::Seeds(rows) => rows.extend(new_rows),
                Dirty::None => self.dirty = Dirty::Seeds(new_rows),
            }
        }
        retracted
    }

    /// Drive the staged updates to a new local fixpoint; returns the facts
    /// newly deduced (rederivations of over-deleted facts included).
    ///
    /// Inserts-only batches re-enumerate each rule seeded on the new rows —
    /// only valuations touching a new tuple can newly satisfy a
    /// precondition, the old data's valuations were exhausted by earlier
    /// rounds. After a retraction cascade the dependency store and delta
    /// queue may reference antecedents that no longer hold, so both are
    /// discarded and one full `Deduce` round re-enumerates (facts still in
    /// `Γ` absorb as no-ops; `H` is repopulated).
    pub fn update_fixpoint(&mut self) -> Vec<Fact> {
        let mut out = Vec::new();
        match std::mem::replace(&mut self.dirty, Dirty::None) {
            Dirty::Full => {
                let _span = dcer_obs::span("chase.rederive");
                self.deps.reset();
                self.pending.clear();
                self.deduce_round(&mut out);
                self.incdeduce_loop(&mut out);
            }
            Dirty::Seeds(rows) => {
                let _span = dcer_obs::span("chase.seeded_update");
                for pi in 0..self.plans.len() {
                    for v in 0..self.plans[pi].num_vars() {
                        let var = TupleVar(v as u16);
                        let rel = self.plans[pi].atoms[v];
                        for &(r, row) in &rows {
                            if r == rel {
                                self.stats.seeded_joins += 1;
                                self.run_plan(pi, &[(var, row)], &mut out);
                            }
                        }
                    }
                }
                self.incdeduce_loop(&mut out);
            }
            Dirty::None => {
                self.incdeduce_loop(&mut out);
            }
        }
        out
    }

    /// Apply retraction notices from peers: facts another worker retracted
    /// that this worker may hold via [`Provenance::External`]. Cascades
    /// locally and returns the *additional* facts dropped here (the noticed
    /// ones are already known to the sender). Callers must follow up with
    /// [`ChaseEngine::update_fixpoint`] once the notice exchange reaches a
    /// fixpoint.
    pub fn retract_notices(&mut self, facts: &[Fact]) -> Vec<Fact> {
        if facts.is_empty() {
            return Vec::new();
        }
        let noticed: HashSet<Fact> = facts.iter().copied().collect();
        let dropped = self.cascade(&HashSet::new(), &noticed);
        dropped.into_iter().filter(|f| !noticed.contains(f)).collect()
    }

    /// Run the deletion cascade over the support log. On any drop the chase
    /// state is replaced by the rebuilt survivor state and a full rederive
    /// is scheduled (queued delta events may reference retracted facts, so
    /// the queue is cleared with them).
    fn cascade(&mut self, dead_tids: &HashSet<Tid>, dead_facts: &HashSet<Fact>) -> Vec<Fact> {
        let _span = dcer_obs::span("chase.cascade");
        let (state, dropped) = self.log.retract(dead_tids, dead_facts);
        if !dropped.is_empty() {
            self.state = state;
            self.pending.clear();
            self.dirty = Dirty::Full;
        }
        dropped
    }

    /// One CDC batch end to end: stage, cascade, rederive, fixpoint.
    /// The closure after any sequence of `apply_update` calls is identical
    /// to a from-scratch chase over the final dataset.
    pub fn apply_update(
        &mut self,
        inserts: Vec<dcer_relation::Tuple>,
        deletes: &[Tid],
    ) -> UpdateDelta {
        let retracted = self.stage_update(inserts, deletes);
        let deduced = self.update_fixpoint();
        UpdateDelta { retracted, deduced }
    }

    /// Consume the engine, producing the final `Γ`.
    pub fn into_outcome(self) -> ChaseOutcome {
        let stats = self.stats();
        ChaseOutcome { matches: self.state.matches, validated: self.state.validated, stats }
    }
}

/// The sink wiring enumeration events into the engine's state.
struct EngineSink<'a> {
    plan: &'a CompiledRule,
    dataset: &'a Dataset,
    sigs: &'a MlSigTable,
    state: &'a mut ChaseState,
    deps: &'a mut DepStore,
    oracle: &'a mut MlOracle,
    log: &'a mut SupportLog,
    pending: &'a mut VecDeque<DeltaEvent>,
    out: &'a mut Vec<Fact>,
    scope: Option<&'a HashMap<Tid, u128>>,
    rule_mask: u128,
    ml_scope: u16,
    pool: Option<&'a dcer_pool::WorkPool>,
    /// This plan's `(checked, pruned)` per recursive predicate.
    rec_stats: &'a mut [(u64, u64)],
    facts_deduced: u64,
}

impl EngineSink<'_> {
    fn tuple(&self, v: TupleVar, rows: &[u32]) -> &Tuple {
        &self.dataset.relation(self.plan.atoms[v.0 as usize]).tuples()[rows[v.0 as usize] as usize]
    }

    /// Index of `pred` within this plan's `rec_preds`. The enumerator only
    /// ever hands out references into that very slice, so pointer offset
    /// recovers the index without a search; out-of-slice references (a
    /// foreign sink's pred) fall out of bounds and are reported as `None`.
    fn pred_index(&self, pred: &RecPred) -> Option<usize> {
        let base = self.plan.rec_preds.as_ptr() as usize;
        let off = (pred as *const RecPred as usize).checked_sub(base)?;
        let idx = off / std::mem::size_of::<RecPred>();
        (off % std::mem::size_of::<RecPred>() == 0 && idx < self.plan.rec_preds.len())
            .then_some(idx)
    }

    /// Record `checked` probes and `pruned` eliminations against `pred`.
    fn count_rec(&mut self, pred: &RecPred, checked: u64, pruned: u64) {
        if let Some(i) = self.pred_index(pred) {
            self.rec_stats[i].0 += checked;
            self.rec_stats[i].1 += pruned;
        }
    }

    /// [`EngineSink::visit`] with optionally precomputed id-predicate
    /// answers: `id_hints = (pred_indices, answers)` substitutes
    /// `answers[j]` for the `holds_id` probe of predicate
    /// `pred_indices[j]`. Hints must reflect the *current* union-find
    /// state — [`EngineSink::visit_batch`] recomputes them whenever a
    /// visit merges classes.
    fn visit_inner(&mut self, rows: &[u32], id_hints: Option<(&[usize], &[bool])>) {
        // Evaluate recursive predicates; collect unsatisfied waitables and,
        // separately, the state-dependent predicates that already hold —
        // those are antecedents of the derivation and must flow into its
        // provenance (an ML predicate satisfied by the oracle alone is
        // purely data-dependent and needs no antecedent).
        let mut unsatisfied: Vec<Pending> = Vec::new();
        let mut held: Vec<Pending> = Vec::new();
        for (pi, p) in self.plan.rec_preds.iter().enumerate() {
            match *p {
                RecPred::Id { left, right } => {
                    let (a, b) = (self.tuple(left, rows).tid, self.tuple(right, rows).tid);
                    let holds = match id_hints.and_then(|(preds, ans)| {
                        preds.iter().position(|&x| x == pi).map(|j| ans[j])
                    }) {
                        Some(h) => h,
                        None => self.state.holds_id(a, b),
                    };
                    if holds {
                        held.push(Pending::Id(a, b));
                    } else {
                        unsatisfied.push(Pending::Id(a, b));
                    }
                }
                RecPred::Ml { sig, left, right, symmetric, waitable } => {
                    let (lt, rt) =
                        (self.tuple(left, rows).clone(), self.tuple(right, rows).clone());
                    if self.state.holds_ml(sig, lt.tid, rt.tid, symmetric) {
                        held.push(Pending::Ml { sig, a: lt.tid, b: rt.tid, symmetric });
                        continue;
                    }
                    if self.oracle.predict(self.sigs, sig, &lt, &rt, self.ml_scope) {
                        continue;
                    }
                    if !waitable {
                        return; // dead valuation (normally pruned earlier)
                    }
                    unsatisfied.push(Pending::Ml { sig, a: lt.tid, b: rt.tid, symmetric });
                }
            }
        }
        let head = match self.plan.head {
            CompiledHead::Id(l, r) => {
                let (a, b) = (self.tuple(l, rows).tid, self.tuple(r, rows).tid);
                if a == b {
                    return; // reflexive, already in Γ
                }
                Fact::id(a, b)
            }
            CompiledHead::Ml { sig, left, right, symmetric } => {
                let (a, b) = (self.tuple(left, rows).tid, self.tuple(right, rows).tid);
                if a == b {
                    return; // self-prediction carries no information
                }
                Fact::ml(sig, a, b, symmetric)
            }
        };
        let support: Vec<Tid> =
            (0..self.plan.num_vars()).map(|v| self.tuple(TupleVar(v as u16), rows).tid).collect();
        if unsatisfied.is_empty() {
            if let Some((side_a, side_b)) = self.state.apply(head) {
                self.facts_deduced += 1;
                self.out.push(head);
                self.log.push(head, Provenance::Local { support, antecedents: held });
                self.pending.push_back(DeltaEvent { fact: head, side_a, side_b });
            }
        } else {
            // Skip recording if the head already holds.
            let head_holds = match head {
                Fact::Id(a, b) => self.state.holds_id(a, b),
                Fact::Ml(..) => self.state.validated.contains(&head),
            };
            if !head_holds {
                self.deps.record(unsatisfied, head, support, held);
            }
        }
    }
}

impl ValuationSink for EngineSink<'_> {
    fn admit_row(&mut self, var: TupleVar, row: u32) -> bool {
        let Some(scope) = self.scope else { return true };
        let tid = self.dataset.relation(self.plan.atoms[var.0 as usize]).tuples()[row as usize].tid;
        scope.get(&tid).is_none_or(|m| m & self.rule_mask != 0)
    }

    fn prune_rec(&mut self, pred: &RecPred, left: &Tuple, right: &Tuple) -> bool {
        // Only an unwaitable false ML predicate is final — prune there.
        let prune = if let RecPred::Ml { sig, symmetric, waitable: false, .. } = *pred {
            !self.state.holds_ml(sig, left.tid, right.tid, symmetric)
                && !self.oracle.predict(self.sigs, sig, left, right, self.ml_scope)
        } else {
            false
        };
        self.count_rec(pred, 1, prune as u64);
        prune
    }

    fn prune_rec_batch(&mut self, pred: &RecPred, pairs: &[(&Tuple, &Tuple)], out: &mut Vec<bool>) {
        let RecPred::Ml { sig, symmetric, waitable: false, .. } = *pred else {
            // Id and waitable ML predicates never prune at bind time — and
            // are not probed here, mirroring the scalar early-out.
            out.clear();
            out.resize(pairs.len(), false);
            self.count_rec(pred, pairs.len() as u64, 0);
            return;
        };
        // Mirror the scalar short-circuit exactly: a pair whose prediction
        // is already validated is not probed (for unwaitable signatures
        // that never happens — only head signatures get validated — but
        // probe-multiset fidelity is the contract, so keep the guard).
        out.clear();
        out.resize(pairs.len(), false);
        let mut probe_idx: Vec<usize> = Vec::with_capacity(pairs.len());
        let mut probes: Vec<(&Tuple, &Tuple)> = Vec::with_capacity(pairs.len());
        for (i, &(l, r)) in pairs.iter().enumerate() {
            if !self.state.holds_ml(sig, l.tid, r.tid, symmetric) {
                probe_idx.push(i);
                probes.push((l, r));
            }
        }
        let mut answers = Vec::new();
        self.oracle.predict_batch(self.sigs, sig, &probes, self.ml_scope, self.pool, &mut answers);
        let mut pruned = 0u64;
        for (i, v) in probe_idx.into_iter().zip(answers) {
            out[i] = !v;
            pruned += !v as u64;
        }
        self.count_rec(pred, pairs.len() as u64, pruned);
    }

    fn visit(&mut self, rows: &[u32]) {
        self.visit_inner(rows, None);
    }

    fn visit_batch(&mut self, rows: &mut [u32], var: TupleVar, candidates: &[u32]) {
        // Which recursive predicates are id probes? Those are answered for
        // the whole window in one union-find pass.
        let id_preds: Vec<usize> = self
            .plan
            .rec_preds
            .iter()
            .enumerate()
            .filter(|(_, p)| matches!(p, RecPred::Id { .. }))
            .map(|(i, _)| i)
            .collect();
        if id_preds.is_empty() {
            for &c in candidates {
                rows[var.0 as usize] = c;
                self.visit_inner(rows, None);
            }
            return;
        }
        let k = id_preds.len();
        let mut pairs: Vec<(Tid, Tid)> = Vec::with_capacity(candidates.len() * k);
        for &c in candidates {
            rows[var.0 as usize] = c;
            for &pi in &id_preds {
                let RecPred::Id { left, right } = self.plan.rec_preds[pi] else { unreachable!() };
                pairs.push((self.tuple(left, rows).tid, self.tuple(right, rows).tid));
            }
        }
        // Snapshot answers; a visit that merges classes (visible as a
        // merge_count bump) invalidates them, so recompute the remaining
        // suffix — each visit then sees answers identical to what scalar
        // `holds_id` probes would return at that moment.
        let mut answers = Vec::new();
        self.state.matches.are_matched_batch(&pairs, &mut answers);
        let mut version = self.state.matches.merge_count();
        let mut base = 0usize;
        for (i, &c) in candidates.iter().enumerate() {
            if self.state.matches.merge_count() != version {
                self.state.matches.are_matched_batch(&pairs[i * k..], &mut answers);
                version = self.state.matches.merge_count();
                base = i;
            }
            rows[var.0 as usize] = c;
            let hints = &answers[(i - base) * k..(i - base + 1) * k];
            self.visit_inner(rows, Some((&id_preds, hints)));
        }
    }
}

/// Run the full sequential `Match` algorithm on a dataset.
pub fn run_match(
    dataset: &Dataset,
    rules: &RuleSet,
    registry: &MlRegistry,
    config: &ChaseConfig,
) -> Result<ChaseOutcome, String> {
    let mut engine = ChaseEngine::new(dataset.clone(), rules, registry, config)?;
    engine.run_local_fixpoint();
    Ok(engine.into_outcome())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcer_ml::{EqualTextClassifier, NgramCosineClassifier};
    use dcer_relation::{Catalog, RelationSchema, Value, ValueType};
    use std::sync::Arc;

    fn catalog() -> Arc<Catalog> {
        Arc::new(
            Catalog::from_schemas(vec![RelationSchema::of(
                "R",
                &[("k", ValueType::Str), ("x", ValueType::Str)],
            )])
            .unwrap(),
        )
    }

    fn registry() -> MlRegistry {
        let mut r = MlRegistry::new();
        r.register("m", Arc::new(EqualTextClassifier));
        r.register("sim", Arc::new(NgramCosineClassifier::new(0.5)));
        r
    }

    fn configs() -> Vec<ChaseConfig> {
        vec![
            ChaseConfig::default(),
            ChaseConfig { dep_capacity: 0, use_dep_cache: true, ..Default::default() }, // overflow path
            ChaseConfig { dep_capacity: 0, use_dep_cache: false, ..Default::default() }, // pure delta joins
            ChaseConfig { dep_capacity: 2, use_dep_cache: true, ..Default::default() },  // mixed
        ]
    }

    #[test]
    fn matches_naive_chase_on_recursive_rules_under_all_configs() {
        let cat = catalog();
        let mut d = Dataset::new(cat.clone());
        for (k, x) in
            [("k1", "p"), ("k1", "q"), ("k2", "q"), ("k2", "r"), ("k3", "r"), ("k4", "zz")]
        {
            d.insert(0, vec![k.into(), x.into()]).unwrap();
        }
        let rules = dcer_mrl::parse_rules(
            &cat,
            "match base: R(t), R(s), t.k = s.k -> t.id = s.id;
             match step: R(t), R(s), R(u), t.id = s.id, s.x = u.x -> t.id = u.id",
        )
        .unwrap();
        let reg = registry();
        let mut reference = crate::naive::naive_chase(&d, &rules, &reg).unwrap();
        let expected = reference.matches.clusters();
        assert!(!expected.is_empty());
        for cfg in configs() {
            let mut outcome = run_match(&d, &rules, &reg, &cfg).unwrap();
            assert_eq!(
                outcome.matches.clusters(),
                expected,
                "config {cfg:?} diverged from naive chase"
            );
        }
    }

    #[test]
    fn ml_validation_feeds_recursion_under_all_configs() {
        let cat = catalog();
        let mut d = Dataset::new(cat.clone());
        let a = d.insert(0, vec!["k".into(), "xa".into()]).unwrap();
        let b = d.insert(0, vec!["k".into(), "xb".into()]).unwrap();
        let c = d.insert(0, vec!["other".into(), "xb".into()]).unwrap();
        let rules = dcer_mrl::parse_rules(
            &cat,
            "match validate: R(t), R(s), t.k = s.k -> m(t.x, s.x);
             match use: R(t), R(s), m(t.x, s.x) -> t.id = s.id",
        )
        .unwrap();
        let reg = registry();
        for cfg in configs() {
            let mut outcome = run_match(&d, &rules, &reg, &cfg).unwrap();
            assert!(outcome.matches.are_matched(a, b), "config {cfg:?}");
            // b.x == c.x so the classifier itself fires `use` for (b, c).
            assert!(outcome.matches.are_matched(b, c), "config {cfg:?}");
        }
    }

    #[test]
    fn engine_stats_are_populated() {
        let cat = catalog();
        let mut d = Dataset::new(cat.clone());
        d.insert(0, vec!["k".into(), "x".into()]).unwrap();
        d.insert(0, vec!["k".into(), "y".into()]).unwrap();
        let rules = dcer_mrl::parse_rules(
            &cat,
            "match r: R(t), R(s), t.k = s.k, m(t.x, s.x), t.id = s.id -> t.id = s.id",
        )
        .unwrap();
        let outcome = run_match(&d, &rules, &registry(), &ChaseConfig::default()).unwrap();
        assert!(outcome.stats.valuations > 0);
        assert!(outcome.stats.ml_calls > 0);
        assert!(outcome.stats.rounds > 0);
    }

    #[test]
    fn apply_delta_triggers_downstream_matches() {
        // Worker-style use: external match (a~b) arrives; local rule
        // propagates to c via x equality.
        let cat = catalog();
        let mut d = Dataset::new(cat.clone());
        let a = d.insert(0, vec!["ka".into(), "p".into()]).unwrap();
        let b = d.insert(0, vec!["kb".into(), "q".into()]).unwrap();
        let c = d.insert(0, vec!["kc".into(), "q".into()]).unwrap();
        // Pin `t` to tuple a so the reflexive valuation t = s cannot fire
        // anything on its own (a.x = "p" only rejoins a itself).
        let rules = dcer_mrl::parse_rules(
            &cat,
            r#"match step: R(t), R(s), R(u), t.k = "ka", t.id = s.id, s.x = u.x -> t.id = u.id"#,
        )
        .unwrap();
        for cfg in configs() {
            let mut engine = ChaseEngine::new(d.clone(), &rules, &registry(), &cfg).unwrap();
            let initial = engine.run_local_fixpoint();
            assert!(initial.is_empty(), "no local matches without the external fact");
            let new_facts = engine.apply_delta(&[Fact::id(a, b)]);
            assert!(
                new_facts.contains(&Fact::id(a, c)) || new_facts.contains(&Fact::id(b, c)),
                "config {cfg:?}: got {new_facts:?}"
            );
            let mut outcome = engine.into_outcome();
            assert!(outcome.matches.are_matched(a, c));
        }
    }

    #[test]
    fn constants_restrict_matches() {
        let cat = catalog();
        let mut d = Dataset::new(cat.clone());
        let a = d.insert(0, vec!["k".into(), "v".into()]).unwrap();
        let b = d.insert(0, vec!["k".into(), "v".into()]).unwrap();
        let c = d.insert(0, vec!["k2".into(), "v".into()]).unwrap();
        let rules = dcer_mrl::parse_rules(
            &cat,
            r#"match r: R(t), R(s), t.x = s.x, t.k = "k", s.k = "k" -> t.id = s.id"#,
        )
        .unwrap();
        let mut outcome = run_match(&d, &rules, &registry(), &ChaseConfig::default()).unwrap();
        assert!(outcome.matches.are_matched(a, b));
        assert!(!outcome.matches.are_matched(a, c));
    }

    #[test]
    fn run_match_reports_missing_model() {
        let cat = catalog();
        let d = Dataset::new(cat.clone());
        let rules =
            dcer_mrl::parse_rules(&cat, "match r: R(t), R(s), nosuch(t.x, s.x) -> t.id = s.id")
                .unwrap();
        let err = run_match(&d, &rules, &MlRegistry::new(), &ChaseConfig::default());
        assert!(err.is_err());
    }

    #[test]
    fn insert_and_deduce_matches_full_rerun() {
        // ΔD extension: inserting tuples incrementally must converge to the
        // same Γ as chasing the final dataset from scratch.
        let cat = catalog();
        let mut base = Dataset::new(cat.clone());
        let a = base.insert(0, vec!["k1".into(), "p".into()]).unwrap();
        let b = base.insert(0, vec!["k2".into(), "p".into()]).unwrap();
        let rules = dcer_mrl::parse_rules(
            &cat,
            "match base: R(t), R(s), t.k = s.k -> t.id = s.id;
             match step: R(t), R(s), R(u), t.id = s.id, s.x = u.x -> t.id = u.id",
        )
        .unwrap();
        let reg = registry();
        for cfg in configs() {
            let mut engine = ChaseEngine::new(base.clone(), &rules, &reg, &cfg).unwrap();
            engine.run_local_fixpoint();

            // Insert c (matches a via k1) and d (x-linked to everything).
            let mut full = base.clone();
            let c = full.insert(0, vec!["k1".into(), "q".into()]).unwrap();
            let d_tid = full.insert(0, vec!["k3".into(), "p".into()]).unwrap();
            let new_tuples: Vec<_> =
                [c, d_tid].iter().map(|&t| full.tuple(t).unwrap().clone()).collect();

            let delta_facts = engine.insert_and_deduce(new_tuples);
            assert!(!delta_facts.is_empty(), "config {cfg:?}");
            let mut incremental = engine.into_outcome();

            let mut scratch = run_match(&full, &rules, &reg, &cfg).unwrap();
            assert_eq!(
                incremental.matches.clusters(),
                scratch.matches.clusters(),
                "config {cfg:?}"
            );
            // a ~ c via base; step links x-sharers of matched tuples.
            assert!(incremental.matches.are_matched(a, c));
            let _ = (b, d_tid);
        }
    }

    #[test]
    fn insert_and_deduce_ignores_known_tuples_and_empty_batches() {
        let cat = catalog();
        let mut d = Dataset::new(cat.clone());
        let a = d.insert(0, vec!["k".into(), "x".into()]).unwrap();
        let rules =
            dcer_mrl::parse_rules(&cat, "match r: R(t), R(s), t.k = s.k -> t.id = s.id").unwrap();
        let mut engine =
            ChaseEngine::new(d.clone(), &rules, &registry(), &ChaseConfig::default()).unwrap();
        engine.run_local_fixpoint();
        assert!(engine.insert_and_deduce(Vec::new()).is_empty());
        let dup = d.tuple(a).unwrap().clone();
        assert!(engine.insert_and_deduce(vec![dup]).is_empty(), "replica ignored");
    }

    #[test]
    fn delete_and_rederive_matches_full_rerun() {
        // Deleting tuples must retract exactly the derivations they
        // supported — including transitive consequences — while facts with
        // alternative support survive (rederived if over-deleted).
        let cat = catalog();
        let mut d = Dataset::new(cat.clone());
        let a = d.insert(0, vec!["k1".into(), "p".into()]).unwrap();
        let b = d.insert(0, vec!["k1".into(), "q".into()]).unwrap();
        let c = d.insert(0, vec!["k2".into(), "q".into()]).unwrap();
        let e = d.insert(0, vec!["k2".into(), "r".into()]).unwrap();
        let rules = dcer_mrl::parse_rules(
            &cat,
            "match base: R(t), R(s), t.k = s.k -> t.id = s.id;
             match step: R(t), R(s), R(u), t.id = s.id, s.x = u.x -> t.id = u.id",
        )
        .unwrap();
        let reg = registry();
        for cfg in configs() {
            let mut engine = ChaseEngine::new(d.clone(), &rules, &reg, &cfg).unwrap();
            engine.run_local_fixpoint();
            {
                let mut pre = engine.state_mut();
                assert!(pre.holds_id(a, b), "a~b via k1 before the delete");
                assert!(pre.holds_id(a, c), "a~c via step before the delete");
                let _ = &mut pre;
            }

            // Deleting b severs the only chain from a to c and e.
            let delta = engine.apply_update(Vec::new(), &[b]);
            assert!(!delta.retracted.is_empty(), "config {cfg:?}");

            let mut shrunk = d.clone();
            assert!(shrunk.delete(b));
            let mut scratch = run_match(&shrunk, &rules, &reg, &cfg).unwrap();
            let mut incremental = engine.into_outcome();
            assert_eq!(
                incremental.matches.clusters(),
                scratch.matches.clusters(),
                "config {cfg:?} diverged from from-scratch after delete"
            );
            assert!(!incremental.matches.are_matched(a, c), "config {cfg:?}");
            assert!(incremental.matches.are_matched(c, e), "c~e via k2 survives, config {cfg:?}");
        }
    }

    #[test]
    fn interleaved_insert_delete_batches_match_full_rerun() {
        let cat = catalog();
        let mut base = Dataset::new(cat.clone());
        let a = base.insert(0, vec!["k1".into(), "p".into()]).unwrap();
        let b = base.insert(0, vec!["k1".into(), "q".into()]).unwrap();
        let rules = dcer_mrl::parse_rules(
            &cat,
            "match base: R(t), R(s), t.k = s.k -> t.id = s.id;
             match step: R(t), R(s), R(u), t.id = s.id, s.x = u.x -> t.id = u.id",
        )
        .unwrap();
        let reg = registry();
        for cfg in configs() {
            let mut engine = ChaseEngine::new(base.clone(), &rules, &reg, &cfg).unwrap();
            engine.run_local_fixpoint();

            // Batch 1: insert c (k1, so a~b~c) and delete a.
            let mut full = base.clone();
            let c = full.insert(0, vec!["k1".into(), "r".into()]).unwrap();
            let c_tuple = full.tuple(c).unwrap().clone();
            assert!(full.delete(a));
            engine.apply_update(vec![c_tuple], &[a]);

            // Batch 2: delete c again plus a no-op ghost delete.
            assert!(full.delete(c));
            let ghost = Tid::new(0, 999);
            engine.apply_update(Vec::new(), &[c, ghost]);

            let mut scratch = run_match(&full, &rules, &reg, &cfg).unwrap();
            let mut incremental = engine.into_outcome();
            assert_eq!(
                incremental.matches.clusters(),
                scratch.matches.clusters(),
                "config {cfg:?} diverged after interleaved batches"
            );
            assert!(!incremental.matches.are_matched(b, c), "config {cfg:?}");
        }
    }

    #[test]
    fn overflowed_store_falls_back_to_reevaluation_and_reports_it() {
        // Satellite: when `K` is exhausted, deps are dropped (visible in
        // stats) and correctness is carried by update-driven re-evaluation.
        let cat = catalog();
        let mut d = Dataset::new(cat.clone());
        // "k4"/"zz" stays isolated: valuations binding it wait on id
        // antecedents that never become true, so they must be recorded —
        // and with K = 0, dropped.
        for (k, x) in
            [("k1", "p"), ("k1", "q"), ("k2", "q"), ("k2", "r"), ("k3", "r"), ("k4", "zz")]
        {
            d.insert(0, vec![k.into(), x.into()]).unwrap();
        }
        let rules = dcer_mrl::parse_rules(
            &cat,
            "match base: R(t), R(s), t.k = s.k -> t.id = s.id;
             match step: R(t), R(s), R(u), t.id = s.id, s.x = u.x -> t.id = u.id",
        )
        .unwrap();
        let reg = registry();
        let tiny = ChaseConfig { dep_capacity: 0, use_dep_cache: true, ..Default::default() };
        let mut reference = run_match(&d, &rules, &reg, &ChaseConfig::default()).unwrap();
        let mut outcome = run_match(&d, &rules, &reg, &tiny).unwrap();
        assert!(outcome.stats.deps_dropped > 0, "K=0 must overflow");
        assert!(outcome.stats.seeded_joins > 0, "fallback re-evaluation ran");
        assert_eq!(outcome.matches.clusters(), reference.matches.clusters());
    }

    /// Tentpole pin: batched evaluation is bit-identical to scalar — same
    /// clusters, same validated set, and the same *full* [`ChaseStats`]
    /// (ml_calls / ml_cache_hits included) at every window width. The
    /// workload exercises every batched surface: an unwaitable ML predicate
    /// over a cross product (windowed classifier prune), a waitable ML
    /// predicate (deferred, never batch-pruned), an id predicate
    /// (union-find window probe in `visit_batch`), and recursion.
    #[test]
    fn batching_is_invariant_in_width_and_matches_scalar() {
        let cat = catalog();
        let mut d = Dataset::new(cat.clone());
        for (k, x) in [
            ("k1", "alpha"),
            ("k1", "beta"),
            ("k2", "beta"),
            ("k2", "gamma"),
            ("k3", "alphaz"),
            ("k4", "alpha"),
            ("k5", "zzz"),
        ] {
            d.insert(0, vec![k.into(), x.into()]).unwrap();
        }
        let rules = dcer_mrl::parse_rules(
            &cat,
            "match validate: R(t), R(s), t.k = s.k -> m(t.x, s.x);
             match use: R(t), R(s), m(t.x, s.x) -> t.id = s.id;
             match uw: R(t), R(s), sim(t.x, s.x) -> t.id = s.id;
             match deep: R(t), R(s), R(u), t.id = s.id, s.k = u.k -> t.id = u.id",
        )
        .unwrap();
        let reg = registry();
        let scalar_cfg = ChaseConfig { use_batching: false, ..Default::default() };
        let mut want = run_match(&d, &rules, &reg, &scalar_cfg).unwrap();
        assert!(want.stats.ml_calls > 0, "workload must exercise the oracle");
        for width in [1usize, 7, 64, 4096] {
            let cfg = ChaseConfig { use_batching: true, batch_size: width, ..Default::default() };
            let mut got = run_match(&d, &rules, &reg, &cfg).unwrap();
            assert_eq!(got.matches.clusters(), want.matches.clusters(), "width {width}");
            assert_eq!(got.validated, want.validated, "width {width}");
            assert_eq!(got.stats, want.stats, "stats diverged at width {width}");
        }
    }

    /// Waitable deferral is identical with batching on and off: a pair the
    /// classifier rejects must still match once a rule head validates its
    /// prediction — batched windows only ever prune unwaitable predicates.
    /// (Referenced by `facts::tests::waitable_sigs_answer_identically_in_batch`.)
    #[test]
    fn batching_defers_waitable_identically() {
        let cat = catalog();
        let mut d = Dataset::new(cat.clone());
        let a = d.insert(0, vec!["k1".into(), "p".into()]).unwrap();
        let b = d.insert(0, vec!["k1".into(), "q".into()]).unwrap();
        let c = d.insert(0, vec!["k9".into(), "r".into()]).unwrap();
        let rules = dcer_mrl::parse_rules(
            &cat,
            "match validate: R(t), R(s), t.k = s.k -> m(t.x, s.x);
             match use: R(t), R(s), m(t.x, s.x) -> t.id = s.id",
        )
        .unwrap();
        let reg = registry();
        for (use_batching, batch_size) in [(false, 0), (true, 1), (true, 1024)] {
            let cfg = ChaseConfig { use_batching, batch_size, ..Default::default() };
            let mut outcome = run_match(&d, &rules, &reg, &cfg).unwrap();
            // m("p", "q") is false at the oracle, yet `validate` validates
            // it (k1 = k1), so `use` must still fire.
            assert!(outcome.matches.are_matched(a, b), "batching={use_batching}/{batch_size}");
            assert!(!outcome.matches.are_matched(a, c));
        }
    }

    #[test]
    fn apply_delta_tolerates_unknown_tids() {
        // Facts about tuples not hosted locally must be absorbed into the
        // union-find without panicking (master routing normally prevents
        // this, but robustness matters).
        let cat = catalog();
        let mut d = Dataset::new(cat.clone());
        d.insert(0, vec!["k".into(), "x".into()]).unwrap();
        let rules =
            dcer_mrl::parse_rules(&cat, "match r: R(t), R(s), t.k = s.k -> t.id = s.id").unwrap();
        let mut engine = ChaseEngine::new(d, &rules, &registry(), &ChaseConfig::default()).unwrap();
        engine.run_local_fixpoint();
        let ghost_a = dcer_relation::Tid::new(0, 900);
        let ghost_b = dcer_relation::Tid::new(0, 901);
        let out = engine.apply_delta(&[Fact::id(ghost_a, ghost_b)]);
        assert!(out.is_empty());
        assert!(engine.state_mut().holds_id(ghost_a, ghost_b));
    }

    #[test]
    fn null_keys_never_match() {
        let cat = catalog();
        let mut d = Dataset::new(cat.clone());
        let a = d.insert(0, vec![Value::Null, "v".into()]).unwrap();
        let b = d.insert(0, vec![Value::Null, "w".into()]).unwrap();
        let rules =
            dcer_mrl::parse_rules(&cat, "match r: R(t), R(s), t.k = s.k -> t.id = s.id").unwrap();
        let mut outcome = run_match(&d, &rules, &registry(), &ChaseConfig::default()).unwrap();
        assert!(!outcome.matches.are_matched(a, b));
        assert_eq!(outcome.matches.num_pairs(), 0);
    }
}
