//! The valuation enumerator: finds all valuations of a compiled rule whose
//! non-recursive precondition (relation atoms, constant and equality
//! predicates) holds in a dataset.
//!
//! Enumeration executes a [`RuleProgram`] — a join order compiled once per
//! rule from index cardinalities (see [`crate::program`]) — with an
//! explicit frame stack instead of recursion. At each step the candidate
//! source is, in preference order:
//!
//! 1. an inverted-index probe through an equality edge whose other side is
//!    already bound (the hash joins of Section V-A), compared by
//!    dictionary code — no `Value` is hashed or cloned per probe,
//! 2. an inverted-index probe on a constant predicate, compiled to its
//!    code once per program,
//! 3. a lazy full scan of the variable's relation (only for genuinely
//!    disconnected atoms, e.g. the all-pairs comparisons under a pure ML
//!    predicate — inherent, as the paper notes).
//!
//! Candidates are iterated as borrows of the index's postings storage and
//! bindings live in a caller-provided [`EvalScratch`], so a warmed
//! enumeration performs **no heap allocation** (asserted by the
//! `eval_noalloc` integration test).
//!
//! Recursive predicates never bind values, but the sink is notified the
//! moment both of their variables are bound so it can prune branches whose
//! ML predicate is false *and can never become validated*.
//!
//! The same program powers full enumeration (`Deduce`) and the seeded,
//! update-driven re-evaluation of `IncDeduce`: seeds pre-bind variables
//! and their steps are skipped; probe options are resolved against
//! whatever is bound at runtime, so a seed can enable a cheaper access
//! path than the static order assumed.

use crate::plan::{CompiledRule, RecPred};
use crate::program::RuleProgram;
use dcer_mrl::TupleVar;
use dcer_relation::{Dataset, IndexSet, Tuple, ValueDict};

/// Receiver for enumeration events.
pub trait ValuationSink {
    /// Whether this row may be bound to a tuple variable at all. The engine
    /// uses this to scope a rule's evaluation to the tuples HyPart
    /// distributed *for that rule* (sound: the rule's own distribution
    /// covers all its valuations; replicas for other rules only create
    /// redundant valuations that exist elsewhere anyway).
    fn admit_row(&mut self, var: TupleVar, row: u32) -> bool {
        let _ = (var, row);
        true
    }

    /// Both variables of a recursive predicate just became bound. Return
    /// `true` to prune this branch (only sound for predicates whose falsity
    /// is final).
    fn prune_rec(&mut self, pred: &RecPred, left: &Tuple, right: &Tuple) -> bool;

    /// Batched [`ValuationSink::prune_rec`]: one recursive predicate
    /// against a whole candidate window. Overwrites `out` with one verdict
    /// per pair (`true` = prune). The default is the scalar loop; the
    /// engine overrides it to score the window through one memoized
    /// classifier batch. Overrides must return the same verdicts the
    /// scalar loop would.
    fn prune_rec_batch(&mut self, pred: &RecPred, pairs: &[(&Tuple, &Tuple)], out: &mut Vec<bool>) {
        out.clear();
        for &(l, r) in pairs {
            out.push(self.prune_rec(pred, l, r));
        }
    }

    /// A complete support valuation; `rows[i]` is the row (within the
    /// dataset's relation instance) bound to tuple variable `i`.
    fn visit(&mut self, rows: &[u32]);

    /// Batched [`ValuationSink::visit`]: the final step's surviving
    /// candidates, visited in window order with `rows[var]` bound to each
    /// in turn. The default is the scalar loop; the engine overrides it to
    /// answer id predicates for the whole window in one union-find pass.
    /// Overrides must visit every candidate, in order.
    fn visit_batch(&mut self, rows: &mut [u32], var: TupleVar, candidates: &[u32]) {
        for &c in candidates {
            rows[var.0 as usize] = c;
            self.visit(rows);
        }
    }
}

/// Sentinel for "variable not bound" in the scratch binding array.
const UNBOUND: u32 = u32::MAX;

/// One backtracking level: iterates the candidate rows of one program step.
/// Plain data — frames live in the reusable scratch, never on the call
/// stack and never owning borrowed postings.
#[derive(Debug, Clone, Copy)]
struct Frame {
    /// Index into [`RuleProgram::steps`].
    step: u32,
    /// Index slot whose flat postings array is being iterated (probe
    /// frames only).
    slot: u32,
    /// Next candidate cursor: an absolute offset into the slot's postings
    /// for probes, a row position for scans.
    pos: u32,
    /// End of the candidate range (exclusive).
    end: u32,
    /// `true` when candidates are row positions `pos..end` of the
    /// relation itself (lazy scan — nothing is materialized).
    scan: bool,
}

/// A per-depth columnar candidate window for batched enumeration: the
/// candidate rows of one frame that survived the step's row-local checks
/// and the batched recursive-predicate pass, drained in order.
#[derive(Debug, Default)]
struct BatchWindow {
    /// Surviving candidate rows (window order = scalar candidate order).
    cands: Vec<u32>,
    /// Next survivor to drain into a descent.
    cursor: usize,
}

/// Reusable enumeration state: the binding array and the frame stack.
///
/// Create once, pass to every [`enumerate_with_program`] call; after the
/// first call warms its capacity, subsequent enumerations of rules with no
/// more variables allocate nothing. The batched enumerator additionally
/// keeps one candidate window per descent depth (unused — and untouched —
/// by the scalar path).
#[derive(Debug, Default)]
pub struct EvalScratch {
    /// `rows[var]` = bound row position, or [`UNBOUND`].
    rows: Vec<u32>,
    /// Explicit descent stack, one frame per bound (non-seed) variable.
    frames: Vec<Frame>,
    /// Candidate windows, parallel to `frames` (batched enumeration only).
    windows: Vec<BatchWindow>,
}

impl EvalScratch {
    /// Empty scratch.
    pub fn new() -> EvalScratch {
        EvalScratch::default()
    }
}

/// Hot-path counters, accumulated locally and published to [`dcer_obs`]
/// once per enumeration (`eval.*` series) so `experiments stats` shows
/// where enumeration time goes.
#[derive(Debug, Default, Clone, Copy)]
struct EvalStats {
    /// Edge probe options priced (index lookups by bound join key).
    probes: u64,
    /// Constant probe options priced.
    const_probes: u64,
    /// Candidate rows drawn from chosen probes.
    probe_rows: u64,
    /// Scan fallbacks taken.
    scans: u64,
    /// Candidate rows drawn from scans.
    scan_rows: u64,
    /// Candidate windows filled (batched enumeration only).
    batch_windows: u64,
    /// Candidates admitted into windows (batched enumeration only).
    batch_candidates: u64,
    /// Window candidates pruned by batched recursive checks.
    batch_pruned: u64,
}

impl EvalStats {
    fn publish(&self, valuations: u64) {
        if !dcer_obs::enabled() {
            return;
        }
        dcer_obs::counter_add("eval.probes", self.probes);
        dcer_obs::counter_add("eval.const_probes", self.const_probes);
        dcer_obs::counter_add("eval.probe_rows", self.probe_rows);
        dcer_obs::counter_add("eval.scans", self.scans);
        dcer_obs::counter_add("eval.scan_rows", self.scan_rows);
        dcer_obs::counter_add("eval.valuations", valuations);
        if self.batch_windows > 0 {
            dcer_obs::counter_add("eval.batch.windows", self.batch_windows);
            dcer_obs::counter_add("eval.batch.candidates", self.batch_candidates);
            dcer_obs::counter_add("eval.batch.pruned", self.batch_pruned);
        }
    }
}

/// Enumerate all support valuations of `plan` in `dataset`, with variables
/// in `seeds` pre-bound to the given rows. Returns the number of complete
/// valuations visited.
///
/// Convenience wrapper: compiles a throwaway [`RuleProgram`] and scratch
/// per call. Fixpoint loops should compile once and call
/// [`enumerate_with_program`] to stay allocation-free.
pub fn enumerate_valuations(
    plan: &CompiledRule,
    dataset: &Dataset,
    indexes: &mut IndexSet,
    seeds: &[(TupleVar, u32)],
    sink: &mut dyn ValuationSink,
) -> u64 {
    let program = RuleProgram::compile(plan, dataset, indexes);
    let mut scratch = EvalScratch::new();
    enumerate_with_program(&program, plan, dataset, indexes, seeds, &mut scratch, sink)
}

/// Run a compiled `program` (from [`RuleProgram::compile`] against the
/// same `dataset` / `indexes` generation) with `seeds` pre-bound. Returns
/// the number of complete valuations visited.
///
/// Seeds bypass [`ValuationSink::admit_row`] — delta-driven re-evaluation
/// must consider any locally hosted tuple — and are validated in a prelude
/// (constant filters, fully seeded equality edges and recursive
/// predicates) before enumeration starts.
pub fn enumerate_with_program(
    program: &RuleProgram,
    plan: &CompiledRule,
    dataset: &Dataset,
    indexes: &IndexSet,
    seeds: &[(TupleVar, u32)],
    scratch: &mut EvalScratch,
    sink: &mut dyn ValuationSink,
) -> u64 {
    let mut stats = EvalStats::default();
    let first = match seed_prelude(program, plan, dataset, indexes, seeds, scratch, sink) {
        Prelude::Rejected => return 0,
        Prelude::Done => {
            stats.publish(1);
            return 1;
        }
        Prelude::Open(first) => first,
    };
    let mut count = 0u64;
    let frame = make_frame(program, dataset, indexes, &scratch.rows, first, &mut stats);
    scratch.frames.push(frame);

    while let Some(top) = scratch.frames.len().checked_sub(1) {
        let f = scratch.frames[top];
        let step = &program.steps[f.step as usize];
        if f.pos >= f.end {
            // Exhausted: unbind and backtrack.
            scratch.rows[step.var as usize] = UNBOUND;
            scratch.frames.pop();
            continue;
        }
        scratch.frames[top].pos = f.pos + 1;
        let row = if f.scan { f.pos } else { indexes.at(f.slot).rows()[f.pos as usize] };
        // Scans walk raw positions and must skip tombstones themselves;
        // probed candidates self-filter (a tombstoned row's code column is
        // NULL, so the probing edge's or constant's check rejects it).
        if f.scan && !dataset.relation(step.rel).is_live(row) {
            continue;
        }
        if !sink.admit_row(TupleVar(step.var), row) {
            continue;
        }
        scratch.rows[step.var as usize] = row;
        if !candidate_passes(plan, dataset, indexes, &scratch.rows, step, row, sink) {
            // Stale binding is fine: overwritten by the next candidate,
            // cleared on frame exhaustion.
            continue;
        }
        match next_unbound_step(program, &scratch.rows, f.step as usize + 1) {
            Some(next) => {
                let frame = make_frame(program, dataset, indexes, &scratch.rows, next, &mut stats);
                scratch.frames.push(frame);
            }
            None => {
                count += 1;
                sink.visit(&scratch.rows);
            }
        }
    }
    stats.publish(count);
    count
}

/// Run a compiled `program` over columnar candidate windows of up to
/// `batch_size` rows: semantically identical to [`enumerate_with_program`]
/// (same visits, in the same order, with the same per-predicate probe
/// multisets), but recursive predicates are evaluated predicate-major over
/// each window through [`ValuationSink::prune_rec_batch`], and final-step
/// survivors are delivered en masse through [`ValuationSink::visit_batch`].
///
/// The equivalence argument: a window collects the candidates of one frame
/// that pass the row-local checks (liveness, admission, constants, equality
/// edges) — none of which read the candidate binding of any *other*
/// candidate — then shrinks it predicate by predicate, so recursive
/// predicate `j` sees exactly the candidates the scalar short-circuit would
/// have reached it with. Batching predicate probes ahead of the descent is
/// sound because only predicates with *final* falsity may prune
/// ([`ValuationSink::prune_rec`]'s contract), making the verdicts pure in
/// the pair. Survivors then drain in candidate order, so descent, visit
/// order and frame statistics match the scalar enumeration exactly.
#[allow(clippy::too_many_arguments)]
pub fn enumerate_with_program_batched(
    program: &RuleProgram,
    plan: &CompiledRule,
    dataset: &Dataset,
    indexes: &IndexSet,
    seeds: &[(TupleVar, u32)],
    scratch: &mut EvalScratch,
    sink: &mut dyn ValuationSink,
    batch_size: usize,
) -> u64 {
    let batch_size = batch_size.max(1);
    let mut stats = EvalStats::default();
    let first = match seed_prelude(program, plan, dataset, indexes, seeds, scratch, sink) {
        Prelude::Rejected => return 0,
        Prelude::Done => {
            stats.publish(1);
            return 1;
        }
        Prelude::Open(first) => first,
    };
    let EvalScratch { rows, frames, windows } = scratch;
    let frame = make_frame(program, dataset, indexes, rows, first, &mut stats);
    frames.push(frame);
    reset_window(windows, 0);

    let mut count = 0u64;
    // Reusable per-window buffers; `pairs` borrows the dataset's tuple
    // storage for the duration of this enumeration.
    let mut pairs: Vec<(&Tuple, &Tuple)> = Vec::new();
    let mut verdicts: Vec<bool> = Vec::new();

    while let Some(top) = frames.len().checked_sub(1) {
        let f = frames[top];
        let step = &program.steps[f.step as usize];

        // Drain one surviving candidate into a descent (non-final steps
        // only; final-step windows are visited en masse at fill time).
        if windows[top].cursor < windows[top].cands.len() {
            let w = &mut windows[top];
            let row = w.cands[w.cursor];
            w.cursor += 1;
            rows[step.var as usize] = row;
            let next = next_unbound_step(program, rows, f.step as usize + 1)
                .expect("final-step windows are never drained");
            let frame = make_frame(program, dataset, indexes, rows, next, &mut stats);
            frames.push(frame);
            reset_window(windows, top + 1);
            continue;
        }

        if f.pos >= f.end {
            // Candidate source exhausted: unbind and backtrack.
            rows[step.var as usize] = UNBOUND;
            frames.pop();
            continue;
        }

        // Fill: gather up to `batch_size` candidates passing the row-local
        // checks. None of these read the candidate binding itself, so they
        // run before `rows[step.var]` is touched.
        let mut cands = std::mem::take(&mut windows[top].cands);
        cands.clear();
        windows[top].cursor = 0;
        {
            let fm = &mut frames[top];
            while cands.len() < batch_size && fm.pos < fm.end {
                let pos = fm.pos;
                fm.pos += 1;
                let row = if f.scan { pos } else { indexes.at(f.slot).rows()[pos as usize] };
                if f.scan && !dataset.relation(step.rel).is_live(row) {
                    continue;
                }
                if !sink.admit_row(TupleVar(step.var), row) {
                    continue;
                }
                if !nonrec_checks_pass(indexes, rows, step, row) {
                    continue;
                }
                cands.push(row);
            }
        }
        stats.batch_windows += 1;
        stats.batch_candidates += cands.len() as u64;

        // Columnar recursive pass, predicate-major with a shrinking
        // survivor set — the batched image of the scalar short-circuit:
        // predicate `j` sees exactly the candidates still alive after
        // predicates `0..j`.
        for &pi in &step.rec_checks {
            if cands.is_empty() {
                break;
            }
            let p = &plan.rec_preds[pi as usize];
            let (l, r) = p.vars();
            let (lv, rv) = (l.0 as usize, r.0 as usize);
            let var = step.var as usize;
            // An endpoint that is not this step's variable must already be
            // bound, or the check is skipped wholesale — candidate-
            // independent, exactly where the scalar loop `continue`s.
            if (lv != var && rows[lv] == UNBOUND) || (rv != var && rows[rv] == UNBOUND) {
                continue;
            }
            let l_tuples = dataset.relation(plan.atoms[lv]).tuples();
            let r_tuples = dataset.relation(plan.atoms[rv]).tuples();
            pairs.clear();
            for &c in &cands {
                let lr = if lv == var { c } else { rows[lv] };
                let rr = if rv == var { c } else { rows[rv] };
                pairs.push((&l_tuples[lr as usize], &r_tuples[rr as usize]));
            }
            sink.prune_rec_batch(p, &pairs, &mut verdicts);
            let mut keep = 0;
            for i in 0..cands.len() {
                if !verdicts[i] {
                    cands[keep] = cands[i];
                    keep += 1;
                }
            }
            stats.batch_pruned += (cands.len() - keep) as u64;
            cands.truncate(keep);
        }

        // Whether this is the final step is candidate-independent: later
        // steps bind different variables. Visit final-step survivors en
        // masse; otherwise leave the window for the drain branch above.
        if next_unbound_step(program, rows, f.step as usize + 1).is_none() {
            count += cands.len() as u64;
            if !cands.is_empty() {
                sink.visit_batch(rows, TupleVar(step.var), &cands);
            }
            cands.clear();
        }
        windows[top].cands = cands;
    }
    stats.publish(count);
    count
}

/// Outcome of the shared seed prelude.
enum Prelude {
    /// Dead program, invalid seed, or a seed-falsified precondition: zero
    /// valuations.
    Rejected,
    /// Every variable was seeded; the lone valuation was validated and
    /// visited.
    Done,
    /// Enumeration proper starts at this step index.
    Open(usize),
}

/// Pre-bind and validate `seeds` (constant filters, fully seeded equality
/// edges and recursive predicates), shared verbatim by the scalar and
/// batched enumerators.
fn seed_prelude(
    program: &RuleProgram,
    plan: &CompiledRule,
    dataset: &Dataset,
    indexes: &IndexSet,
    seeds: &[(TupleVar, u32)],
    scratch: &mut EvalScratch,
    sink: &mut dyn ValuationSink,
) -> Prelude {
    if program.dead {
        return Prelude::Rejected;
    }
    let n = program.num_vars;
    scratch.rows.clear();
    scratch.rows.resize(n, UNBOUND);
    scratch.frames.clear();

    // Pre-bind and validate seeds (tombstoned rows support nothing).
    for &(v, row) in seeds {
        let relation = dataset.relation(plan.atoms[v.0 as usize]);
        if row as usize >= relation.len() || !relation.is_live(row) {
            return Prelude::Rejected;
        }
        scratch.rows[v.0 as usize] = row;
    }
    for &(v, _) in seeds {
        let step = &program.steps[program.step_of(v)];
        let row = scratch.rows[v.0 as usize];
        for c in &step.consts {
            if indexes.at(c.slot).code_of_row(row) != c.code {
                return Prelude::Rejected;
            }
        }
    }
    // Equality edges and recursive predicates already fully bound by seeds.
    for p in &program.eq_pairs {
        let (lr, rr) = (scratch.rows[p.left_var as usize], scratch.rows[p.right_var as usize]);
        if lr != UNBOUND && rr != UNBOUND {
            let lc = indexes.at(p.left_slot).code_of_row(lr);
            if lc == ValueDict::NULL || lc != indexes.at(p.right_slot).code_of_row(rr) {
                return Prelude::Rejected;
            }
        }
    }
    for p in &plan.rec_preds {
        let (l, r) = p.vars();
        let (lr, rr) = (scratch.rows[l.0 as usize], scratch.rows[r.0 as usize]);
        if lr != UNBOUND && rr != UNBOUND {
            let lt = &dataset.relation(plan.atoms[l.0 as usize]).tuples()[lr as usize];
            let rt = &dataset.relation(plan.atoms[r.0 as usize]).tuples()[rr as usize];
            if sink.prune_rec(p, lt, rt) {
                return Prelude::Rejected;
            }
        }
    }
    match next_unbound_step(program, &scratch.rows, 0) {
        None => {
            // Everything seeded: the prelude validated the lone valuation.
            sink.visit(&scratch.rows);
            Prelude::Done
        }
        Some(first) => Prelude::Open(first),
    }
}

/// Clear (lazily growing) the candidate window at `depth`.
fn reset_window(windows: &mut Vec<BatchWindow>, depth: usize) {
    if windows.len() <= depth {
        windows.resize_with(depth + 1, BatchWindow::default);
    }
    let w = &mut windows[depth];
    w.cands.clear();
    w.cursor = 0;
}

/// First step at or after `from` whose variable is not already bound (the
/// bound ones are seeds; frame-bound steps are always behind `from`).
fn next_unbound_step(program: &RuleProgram, rows: &[u32], from: usize) -> Option<usize> {
    (from..program.steps.len()).find(|&i| rows[program.steps[i].var as usize] == UNBOUND)
}

/// Price the step's available probe options and open a frame over the
/// cheapest, falling back to a lazy scan when no option is usable.
fn make_frame(
    program: &RuleProgram,
    dataset: &Dataset,
    indexes: &IndexSet,
    rows: &[u32],
    step_idx: usize,
    stats: &mut EvalStats,
) -> Frame {
    let step = &program.steps[step_idx];
    let mut best: Option<(u32, u32, u32)> = None; // (slot, start, end)
    for c in &step.consts {
        stats.const_probes += 1;
        let (s, e) = indexes.at(c.slot).bucket_range(c.code);
        if best.is_none_or(|(_, bs, be)| e - s < be - bs) {
            best = Some((c.slot, s, e));
        }
    }
    for ep in &step.edges {
        let src = rows[ep.src_var as usize];
        if src == UNBOUND {
            continue;
        }
        stats.probes += 1;
        // A null join key yields `ValueDict::NULL`, whose bucket is empty:
        // nulls never join.
        let code = indexes.at(ep.src_slot).code_of_row(src);
        let (s, e) = indexes.at(ep.slot).bucket_range(code);
        if best.is_none_or(|(_, bs, be)| e - s < be - bs) {
            best = Some((ep.slot, s, e));
        }
    }
    match best {
        Some((slot, s, e)) => {
            stats.probe_rows += (e - s) as u64;
            Frame { step: step_idx as u32, slot, pos: s, end: e, scan: false }
        }
        None => {
            let len = dataset.relation(step.rel).len() as u32;
            stats.scans += 1;
            stats.scan_rows += len as u64;
            Frame { step: step_idx as u32, slot: 0, pos: 0, end: len, scan: true }
        }
    }
}

/// Run the step's checks against a freshly bound candidate, in the same
/// order as the recursive enumerator did: constant filters, then equality
/// edges, then recursive predicates.
fn candidate_passes(
    plan: &CompiledRule,
    dataset: &Dataset,
    indexes: &IndexSet,
    rows: &[u32],
    step: &crate::program::Step,
    row: u32,
    sink: &mut dyn ValuationSink,
) -> bool {
    if !nonrec_checks_pass(indexes, rows, step, row) {
        return false;
    }
    for &pi in &step.rec_checks {
        let p = &plan.rec_preds[pi as usize];
        let (l, r) = p.vars();
        let (lr, rr) = (rows[l.0 as usize], rows[r.0 as usize]);
        if lr == UNBOUND || rr == UNBOUND {
            continue;
        }
        let lt = &dataset.relation(plan.atoms[l.0 as usize]).tuples()[lr as usize];
        let rt = &dataset.relation(plan.atoms[r.0 as usize]).tuples()[rr as usize];
        if sink.prune_rec(p, lt, rt) {
            return false;
        }
    }
    true
}

/// The candidate checks that read only the candidate row and *other*
/// variables' bindings: constant filters, then equality edges. A self-edge
/// (`other_var == step.var`) compares the candidate against itself, so the
/// batched fill — which runs before the candidate is bound — resolves it
/// to `row` explicitly (the scalar path binds first, making the two
/// resolutions identical).
fn nonrec_checks_pass(
    indexes: &IndexSet,
    rows: &[u32],
    step: &crate::program::Step,
    row: u32,
) -> bool {
    for c in &step.consts {
        if indexes.at(c.slot).code_of_row(row) != c.code {
            return false;
        }
    }
    for c in &step.eq_checks {
        let other = if c.other_var == step.var { row } else { rows[c.other_var as usize] };
        if other == UNBOUND {
            continue;
        }
        let code = indexes.at(c.slot).code_of_row(row);
        if code == ValueDict::NULL || code != indexes.at(c.other_slot).code_of_row(other) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facts::MlSigTable;
    use crate::plan::CompiledRule;
    use dcer_mrl::parse_rules;
    use dcer_relation::{Catalog, RelationSchema, Value, ValueType};
    use std::sync::Arc;

    struct Collect {
        all: Vec<Vec<u32>>,
        prune_ml: bool,
    }
    impl ValuationSink for Collect {
        fn prune_rec(&mut self, pred: &RecPred, _l: &Tuple, _r: &Tuple) -> bool {
            self.prune_ml && matches!(pred, RecPred::Ml { .. })
        }
        fn visit(&mut self, rows: &[u32]) {
            self.all.push(rows.to_vec());
        }
    }

    fn catalog() -> Arc<Catalog> {
        Arc::new(
            Catalog::from_schemas(vec![
                RelationSchema::of("R", &[("k", ValueType::Str), ("v", ValueType::Str)]),
                RelationSchema::of("S", &[("k", ValueType::Str), ("w", ValueType::Str)]),
            ])
            .unwrap(),
        )
    }

    fn data() -> Dataset {
        let mut d = Dataset::new(catalog());
        d.insert(0, vec!["a".into(), "r0".into()]).unwrap(); // R row 0
        d.insert(0, vec!["a".into(), "r1".into()]).unwrap(); // R row 1
        d.insert(0, vec!["b".into(), "r2".into()]).unwrap(); // R row 2
        d.insert(1, vec!["a".into(), "s0".into()]).unwrap(); // S row 0
        d.insert(1, vec!["b".into(), "s1".into()]).unwrap(); // S row 1
        d.insert(1, vec![Value::Null, "s2".into()]).unwrap(); // S row 2
        d
    }

    fn compile(src: &str) -> (CompiledRule, Dataset) {
        let d = data();
        let rules = parse_rules(d.catalog(), src).unwrap();
        let sigs = MlSigTable::build(&rules);
        (CompiledRule::compile(&rules, &sigs, 0), d)
    }

    #[test]
    fn equi_join_enumerates_exact_matches() {
        let (plan, d) = compile("match j: R(t), S(s), t.k = s.k -> dummy(t.k, s.k)");
        let mut idx = IndexSet::new();
        let mut sink = Collect { all: vec![], prune_ml: false };
        let n = enumerate_valuations(&plan, &d, &mut idx, &[], &mut sink);
        // (R0,S0), (R1,S0), (R2,S1) — nulls never join.
        assert_eq!(n, 3);
        let mut got = sink.all;
        got.sort();
        assert_eq!(got, vec![vec![0, 0], vec![1, 0], vec![2, 1]]);
    }

    #[test]
    fn self_join_includes_reflexive_and_both_orders() {
        let (plan, d) = compile("match j: R(t), R(s), t.k = s.k -> t.id = s.id");
        let mut idx = IndexSet::new();
        let mut sink = Collect { all: vec![], prune_ml: false };
        let n = enumerate_valuations(&plan, &d, &mut idx, &[], &mut sink);
        // k=a: rows {0,1} -> 4 pairs; k=b: row {2} -> 1 pair.
        assert_eq!(n, 5);
    }

    #[test]
    fn constant_filter_prunes_scan() {
        let (plan, d) = compile(r#"match j: R(t), S(s), t.k = s.k, t.v = "r2" -> dummy(t.k, s.k)"#);
        let mut idx = IndexSet::new();
        let mut sink = Collect { all: vec![], prune_ml: false };
        let n = enumerate_valuations(&plan, &d, &mut idx, &[], &mut sink);
        assert_eq!(n, 1);
        assert_eq!(sink.all, vec![vec![2, 1]]);
    }

    #[test]
    fn unmatchable_constant_short_circuits() {
        let (plan, d) = compile(r#"match j: R(t), S(s), t.k = s.k, t.v = "zz" -> dummy(t.k, s.k)"#);
        let mut idx = IndexSet::new();
        let mut sink = Collect { all: vec![], prune_ml: false };
        assert_eq!(enumerate_valuations(&plan, &d, &mut idx, &[], &mut sink), 0);
        // Seeds can't resurrect a dead program either.
        assert_eq!(enumerate_valuations(&plan, &d, &mut idx, &[(TupleVar(0), 0)], &mut sink), 0);
    }

    #[test]
    fn disconnected_atoms_cross_product() {
        let (plan, d) = compile("match j: R(t), S(s) -> dummy(t.k, s.k)");
        let mut idx = IndexSet::new();
        let mut sink = Collect { all: vec![], prune_ml: false };
        let n = enumerate_valuations(&plan, &d, &mut idx, &[], &mut sink);
        assert_eq!(n, 9); // 3 x 3
    }

    #[test]
    fn ml_pruning_cuts_branches() {
        let (plan, d) = compile("match j: R(t), S(s), m(t.k, s.k) -> dummy(t.k, s.k)");
        let mut idx = IndexSet::new();
        let mut sink = Collect { all: vec![], prune_ml: true };
        let n = enumerate_valuations(&plan, &d, &mut idx, &[], &mut sink);
        assert_eq!(n, 0);
        let mut sink = Collect { all: vec![], prune_ml: false };
        let n = enumerate_valuations(&plan, &d, &mut idx, &[], &mut sink);
        assert_eq!(n, 9);
    }

    #[test]
    fn seeds_restrict_enumeration() {
        let (plan, d) = compile("match j: R(t), S(s), t.k = s.k -> dummy(t.k, s.k)");
        let mut idx = IndexSet::new();
        let mut sink = Collect { all: vec![], prune_ml: false };
        let n = enumerate_valuations(&plan, &d, &mut idx, &[(TupleVar(0), 1)], &mut sink);
        assert_eq!(n, 1);
        assert_eq!(sink.all, vec![vec![1, 0]]);
    }

    #[test]
    fn fully_seeded_valuation_is_validated() {
        let (plan, d) = compile("match j: R(t), S(s), t.k = s.k -> dummy(t.k, s.k)");
        let mut idx = IndexSet::new();
        let mut sink = Collect { all: vec![], prune_ml: false };
        let n = enumerate_valuations(
            &plan,
            &d,
            &mut idx,
            &[(TupleVar(0), 0), (TupleVar(1), 0)],
            &mut sink,
        );
        assert_eq!(n, 1);
        assert_eq!(sink.all, vec![vec![0, 0]]);
    }

    #[test]
    fn inconsistent_seeds_yield_nothing() {
        let (plan, d) = compile("match j: R(t), S(s), t.k = s.k -> dummy(t.k, s.k)");
        let mut idx = IndexSet::new();
        let mut sink = Collect { all: vec![], prune_ml: false };
        // R row 0 has k=a, S row 1 has k=b: contradiction.
        let n = enumerate_valuations(
            &plan,
            &d,
            &mut idx,
            &[(TupleVar(0), 0), (TupleVar(1), 1)],
            &mut sink,
        );
        assert_eq!(n, 0);
        // Out-of-range seed row.
        let n = enumerate_valuations(&plan, &d, &mut idx, &[(TupleVar(0), 99)], &mut sink);
        assert_eq!(n, 0);
    }

    #[test]
    fn seed_violating_constant_filter_yields_nothing() {
        let (plan, d) = compile(r#"match j: R(t), S(s), t.k = s.k, t.v = "r0" -> dummy(t.k, s.k)"#);
        let mut idx = IndexSet::new();
        let mut sink = Collect { all: vec![], prune_ml: false };
        let n = enumerate_valuations(&plan, &d, &mut idx, &[(TupleVar(0), 1)], &mut sink);
        assert_eq!(n, 0);
    }

    #[test]
    fn three_way_chain_join() {
        let (plan, d) = compile("match j: R(t), S(s), R(u), t.k = s.k, s.k = u.k -> t.id = u.id");
        let mut idx = IndexSet::new();
        let mut sink = Collect { all: vec![], prune_ml: false };
        let n = enumerate_valuations(&plan, &d, &mut idx, &[], &mut sink);
        // k=a: R{0,1} x S{0} x R{0,1} = 4; k=b: R{2} x S{1} x R{2} = 1.
        assert_eq!(n, 5);
    }

    /// The batched enumerator is a drop-in for the scalar one: same
    /// valuations, in the same order, at every batch size — including 1
    /// (pure overhead) and sizes far beyond any window.
    #[test]
    fn batched_enumeration_matches_scalar_across_sizes() {
        let rules = [
            "match j: R(t), S(s), t.k = s.k -> dummy(t.k, s.k)",
            "match j: R(t), R(s), t.k = s.k -> t.id = s.id",
            "match j: R(t), S(s) -> dummy(t.k, s.k)",
            "match j: R(t), S(s), m(t.k, s.k) -> dummy(t.k, s.k)",
            "match j: R(t), S(s), R(u), t.k = s.k, s.k = u.k -> t.id = u.id",
            r#"match j: R(t), S(s), t.k = s.k, t.v = "r2" -> dummy(t.k, s.k)"#,
        ];
        let seed_sets: [&[(TupleVar, u32)]; 3] =
            [&[], &[(TupleVar(0), 1)], &[(TupleVar(0), 0), (TupleVar(1), 0)]];
        for src in rules {
            let (plan, d) = compile(src);
            let mut idx = IndexSet::new();
            let program = RuleProgram::compile(&plan, &d, &mut idx);
            for prune_ml in [false, true] {
                for seeds in seed_sets {
                    let mut scalar = Collect { all: vec![], prune_ml };
                    let mut scratch = EvalScratch::new();
                    let want = enumerate_with_program(
                        &program,
                        &plan,
                        &d,
                        &idx,
                        seeds,
                        &mut scratch,
                        &mut scalar,
                    );
                    for batch in [1usize, 2, 7, 4096] {
                        let mut batched = Collect { all: vec![], prune_ml };
                        let got = enumerate_with_program_batched(
                            &program,
                            &plan,
                            &d,
                            &idx,
                            seeds,
                            &mut scratch,
                            &mut batched,
                            batch,
                        );
                        assert_eq!(got, want, "{src} batch={batch} seeds={seeds:?}");
                        assert_eq!(
                            batched.all, scalar.all,
                            "visit order diverged: {src} batch={batch} seeds={seeds:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn program_reuse_with_scratch_matches_fresh_compile() {
        let (plan, d) = compile("match j: R(t), S(s), t.k = s.k -> dummy(t.k, s.k)");
        let mut idx = IndexSet::new();
        let program = RuleProgram::compile(&plan, &d, &mut idx);
        let mut scratch = EvalScratch::new();
        for _ in 0..3 {
            let mut sink = Collect { all: vec![], prune_ml: false };
            let n = enumerate_with_program(&program, &plan, &d, &idx, &[], &mut scratch, &mut sink);
            assert_eq!(n, 3);
        }
        let mut sink = Collect { all: vec![], prune_ml: false };
        let n = enumerate_with_program(
            &program,
            &plan,
            &d,
            &idx,
            &[(TupleVar(1), 0)],
            &mut scratch,
            &mut sink,
        );
        assert_eq!(n, 2); // R0 and R1 join S0.
    }
}
