//! The valuation enumerator: finds all valuations of a compiled rule whose
//! non-recursive precondition (relation atoms, constant and equality
//! predicates) holds in a dataset.
//!
//! The enumerator is a backtracking join over the rule's atoms. At every
//! step it picks the cheapest *access path* for some unbound variable:
//!
//! 1. an inverted-index probe through an equality edge whose other side is
//!    already bound (the hash joins of Section V-A),
//! 2. an inverted-index probe on a constant predicate, or
//! 3. a full scan of the variable's relation (only for genuinely
//!    disconnected atoms, e.g. the all-pairs comparisons under a pure ML
//!    predicate — inherent, as the paper notes).
//!
//! Recursive predicates never bind values, but the sink is notified the
//! moment both of their variables are bound so it can prune branches whose
//! ML predicate is false *and can never become validated*.
//!
//! The same routine powers full enumeration (`Deduce`) and the seeded,
//! update-driven re-evaluation of `IncDeduce`: seeds pre-bind variables.

use crate::plan::{CompiledRule, RecPred};
use dcer_mrl::TupleVar;
use dcer_relation::{Dataset, IndexSet, Tuple};

/// Receiver for enumeration events.
pub trait ValuationSink {
    /// Whether this row may be bound to a tuple variable at all. The engine
    /// uses this to scope a rule's evaluation to the tuples HyPart
    /// distributed *for that rule* (sound: the rule's own distribution
    /// covers all its valuations; replicas for other rules only create
    /// redundant valuations that exist elsewhere anyway).
    fn admit_row(&mut self, var: TupleVar, row: u32) -> bool {
        let _ = (var, row);
        true
    }

    /// Both variables of a recursive predicate just became bound. Return
    /// `true` to prune this branch (only sound for predicates whose falsity
    /// is final).
    fn prune_rec(&mut self, pred: &RecPred, left: &Tuple, right: &Tuple) -> bool;

    /// A complete support valuation; `rows[i]` is the row (within the
    /// dataset's relation instance) bound to tuple variable `i`.
    fn visit(&mut self, rows: &[u32]);
}

/// Enumerate all support valuations of `plan` in `dataset`, with variables
/// in `seeds` pre-bound to the given rows. Returns the number of complete
/// valuations visited.
pub fn enumerate_valuations(
    plan: &CompiledRule,
    dataset: &Dataset,
    indexes: &mut IndexSet,
    seeds: &[(TupleVar, u32)],
    sink: &mut dyn ValuationSink,
) -> u64 {
    let n = plan.num_vars();
    let mut rows: Vec<Option<u32>> = vec![None; n];

    // Pre-bind and validate seeds. (Seeds bypass `admit_row`: delta-driven
    // re-evaluation must consider any locally hosted tuple.)
    for &(v, row) in seeds {
        let rel = plan.atoms[v.0 as usize];
        if row as usize >= dataset.relation(rel).len() {
            return 0;
        }
        rows[v.0 as usize] = Some(row);
    }
    for &(v, _) in seeds {
        if !filters_hold(plan, dataset, &rows, v) {
            return 0;
        }
    }
    // Check predicates already fully bound by seeds (equality + recursive).
    for e in &plan.eq_edges {
        if let (Some(lr), Some(rr)) = (rows[e.left.0 .0 as usize], rows[e.right.0 .0 as usize]) {
            let lt = &dataset.relation(plan.atoms[e.left.0 .0 as usize]).tuples()[lr as usize];
            let rt = &dataset.relation(plan.atoms[e.right.0 .0 as usize]).tuples()[rr as usize];
            if !lt.get(e.left.1).sql_eq(rt.get(e.right.1)) {
                return 0;
            }
        }
    }
    for p in &plan.rec_preds {
        let (l, r) = p.vars();
        if let (Some(lr), Some(rr)) = (rows[l.0 as usize], rows[r.0 as usize]) {
            let lt = dataset.relation(plan.atoms[l.0 as usize]).tuples()[lr as usize].clone();
            let rt = dataset.relation(plan.atoms[r.0 as usize]).tuples()[rr as usize].clone();
            if sink.prune_rec(p, &lt, &rt) {
                return 0;
            }
        }
    }

    let mut count = 0;
    descend(plan, dataset, indexes, &mut rows, sink, &mut count);
    count
}

/// All constant filters of variable `v` hold under the current binding.
fn filters_hold(plan: &CompiledRule, dataset: &Dataset, rows: &[Option<u32>], v: TupleVar) -> bool {
    let Some(row) = rows[v.0 as usize] else {
        return true;
    };
    let t = &dataset.relation(plan.atoms[v.0 as usize]).tuples()[row as usize];
    plan.const_filters[v.0 as usize].iter().all(|(a, c)| t.get(*a).sql_eq(c))
}

/// Candidate row source for the chosen variable.
enum Access {
    /// Probe rows from an index lookup (already materialized).
    Probe(Vec<u32>),
    /// Scan the whole relation.
    Scan(u32),
}

fn descend(
    plan: &CompiledRule,
    dataset: &Dataset,
    indexes: &mut IndexSet,
    rows: &mut Vec<Option<u32>>,
    sink: &mut dyn ValuationSink,
    count: &mut u64,
) {
    // Complete?
    let Some(_) = rows.iter().position(Option::is_none) else {
        *count += 1;
        let full: Vec<u32> = rows.iter().map(|r| r.unwrap()).collect();
        sink.visit(&full);
        return;
    };

    // Pick the cheapest access path among unbound variables.
    let mut best: Option<(TupleVar, usize, Access)> = None; // (var, cost, access)
    for i in 0..plan.num_vars() {
        if rows[i].is_some() {
            continue;
        }
        let v = TupleVar(i as u16);
        let rel = plan.atoms[i];
        // Equality edges with the other side bound.
        for e in &plan.eq_edges {
            let probe = if e.left.0 == v {
                rows[e.right.0 .0 as usize].map(|r| {
                    let other =
                        &dataset.relation(plan.atoms[e.right.0 .0 as usize]).tuples()[r as usize];
                    (e.left.1, other.get(e.right.1).clone())
                })
            } else if e.right.0 == v {
                rows[e.left.0 .0 as usize].map(|r| {
                    let other =
                        &dataset.relation(plan.atoms[e.left.0 .0 as usize]).tuples()[r as usize];
                    (e.right.1, other.get(e.left.1).clone())
                })
            } else {
                None
            };
            if let Some((attr, value)) = probe {
                if value.is_null() {
                    // Null never joins: this branch is dead for v.
                    best = Some((v, 0, Access::Probe(Vec::new())));
                    continue;
                }
                let postings = indexes.get(dataset, rel, attr).lookup(&value);
                if best.as_ref().is_none_or(|(_, c, _)| postings.len() < *c) {
                    best = Some((v, postings.len(), Access::Probe(postings.to_vec())));
                }
            }
        }
        // Constant filters as access paths.
        for (attr, c) in &plan.const_filters[i] {
            let postings = indexes.get(dataset, rel, *attr).lookup(c);
            if best.as_ref().is_none_or(|(_, cost, _)| postings.len() < *cost) {
                best = Some((v, postings.len(), Access::Probe(postings.to_vec())));
            }
        }
    }
    let (var, _, access) = match best {
        Some(b) => b,
        None => {
            // No connected unbound variable: fall back to scanning the
            // smallest-unbound relation (cartesian step).
            let (i, rel) = (0..plan.num_vars())
                .filter(|&i| rows[i].is_none())
                .map(|i| (i, plan.atoms[i]))
                .min_by_key(|&(_, rel)| dataset.relation(rel).len())
                .expect("at least one unbound variable");
            (TupleVar(i as u16), 0, Access::Scan(dataset.relation(rel).len() as u32))
        }
    };

    let candidates: Vec<u32> = match access {
        Access::Probe(rows) => rows,
        Access::Scan(len) => (0..len).collect(),
    };
    'cands: for row in candidates {
        if !sink.admit_row(var, row) {
            continue;
        }
        rows[var.0 as usize] = Some(row);
        // Constant filters.
        if !filters_hold(plan, dataset, rows, var) {
            rows[var.0 as usize] = None;
            continue;
        }
        // All equality edges now fully bound and touching `var`.
        for e in &plan.eq_edges {
            if e.left.0 != var && e.right.0 != var {
                continue;
            }
            if let (Some(lr), Some(rr)) = (rows[e.left.0 .0 as usize], rows[e.right.0 .0 as usize])
            {
                let lt = &dataset.relation(plan.atoms[e.left.0 .0 as usize]).tuples()[lr as usize];
                let rt = &dataset.relation(plan.atoms[e.right.0 .0 as usize]).tuples()[rr as usize];
                if !lt.get(e.left.1).sql_eq(rt.get(e.right.1)) {
                    rows[var.0 as usize] = None;
                    continue 'cands;
                }
            }
        }
        // Recursive predicates that just became fully bound.
        for p in &plan.rec_preds {
            let (l, r) = p.vars();
            if l != var && r != var {
                continue;
            }
            if let (Some(lr), Some(rr)) = (rows[l.0 as usize], rows[r.0 as usize]) {
                let lt = dataset.relation(plan.atoms[l.0 as usize]).tuples()[lr as usize].clone();
                let rt = dataset.relation(plan.atoms[r.0 as usize]).tuples()[rr as usize].clone();
                if sink.prune_rec(p, &lt, &rt) {
                    rows[var.0 as usize] = None;
                    continue 'cands;
                }
            }
        }
        descend(plan, dataset, indexes, rows, sink, count);
        rows[var.0 as usize] = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facts::MlSigTable;
    use crate::plan::CompiledRule;
    use dcer_mrl::parse_rules;
    use dcer_relation::{Catalog, RelationSchema, Value, ValueType};
    use std::sync::Arc;

    struct Collect {
        all: Vec<Vec<u32>>,
        prune_ml: bool,
    }
    impl ValuationSink for Collect {
        fn prune_rec(&mut self, pred: &RecPred, _l: &Tuple, _r: &Tuple) -> bool {
            self.prune_ml && matches!(pred, RecPred::Ml { .. })
        }
        fn visit(&mut self, rows: &[u32]) {
            self.all.push(rows.to_vec());
        }
    }

    fn catalog() -> Arc<Catalog> {
        Arc::new(
            Catalog::from_schemas(vec![
                RelationSchema::of("R", &[("k", ValueType::Str), ("v", ValueType::Str)]),
                RelationSchema::of("S", &[("k", ValueType::Str), ("w", ValueType::Str)]),
            ])
            .unwrap(),
        )
    }

    fn data() -> Dataset {
        let mut d = Dataset::new(catalog());
        d.insert(0, vec!["a".into(), "r0".into()]).unwrap(); // R row 0
        d.insert(0, vec!["a".into(), "r1".into()]).unwrap(); // R row 1
        d.insert(0, vec!["b".into(), "r2".into()]).unwrap(); // R row 2
        d.insert(1, vec!["a".into(), "s0".into()]).unwrap(); // S row 0
        d.insert(1, vec!["b".into(), "s1".into()]).unwrap(); // S row 1
        d.insert(1, vec![Value::Null, "s2".into()]).unwrap(); // S row 2
        d
    }

    fn compile(src: &str) -> (CompiledRule, Dataset) {
        let d = data();
        let rules = parse_rules(d.catalog(), src).unwrap();
        let sigs = MlSigTable::build(&rules);
        (CompiledRule::compile(&rules, &sigs, 0), d)
    }

    #[test]
    fn equi_join_enumerates_exact_matches() {
        let (plan, d) = compile("match j: R(t), S(s), t.k = s.k -> dummy(t.k, s.k)");
        let mut idx = IndexSet::new();
        let mut sink = Collect { all: vec![], prune_ml: false };
        let n = enumerate_valuations(&plan, &d, &mut idx, &[], &mut sink);
        // (R0,S0), (R1,S0), (R2,S1) — nulls never join.
        assert_eq!(n, 3);
        let mut got = sink.all;
        got.sort();
        assert_eq!(got, vec![vec![0, 0], vec![1, 0], vec![2, 1]]);
    }

    #[test]
    fn self_join_includes_reflexive_and_both_orders() {
        let (plan, d) = compile("match j: R(t), R(s), t.k = s.k -> t.id = s.id");
        let mut idx = IndexSet::new();
        let mut sink = Collect { all: vec![], prune_ml: false };
        let n = enumerate_valuations(&plan, &d, &mut idx, &[], &mut sink);
        // k=a: rows {0,1} -> 4 pairs; k=b: row {2} -> 1 pair.
        assert_eq!(n, 5);
    }

    #[test]
    fn constant_filter_prunes_scan() {
        let (plan, d) = compile(r#"match j: R(t), S(s), t.k = s.k, t.v = "r2" -> dummy(t.k, s.k)"#);
        let mut idx = IndexSet::new();
        let mut sink = Collect { all: vec![], prune_ml: false };
        let n = enumerate_valuations(&plan, &d, &mut idx, &[], &mut sink);
        assert_eq!(n, 1);
        assert_eq!(sink.all, vec![vec![2, 1]]);
    }

    #[test]
    fn disconnected_atoms_cross_product() {
        let (plan, d) = compile("match j: R(t), S(s) -> dummy(t.k, s.k)");
        let mut idx = IndexSet::new();
        let mut sink = Collect { all: vec![], prune_ml: false };
        let n = enumerate_valuations(&plan, &d, &mut idx, &[], &mut sink);
        assert_eq!(n, 9); // 3 x 3
    }

    #[test]
    fn ml_pruning_cuts_branches() {
        let (plan, d) = compile("match j: R(t), S(s), m(t.k, s.k) -> dummy(t.k, s.k)");
        let mut idx = IndexSet::new();
        let mut sink = Collect { all: vec![], prune_ml: true };
        let n = enumerate_valuations(&plan, &d, &mut idx, &[], &mut sink);
        assert_eq!(n, 0);
        let mut sink = Collect { all: vec![], prune_ml: false };
        let n = enumerate_valuations(&plan, &d, &mut idx, &[], &mut sink);
        assert_eq!(n, 9);
    }

    #[test]
    fn seeds_restrict_enumeration() {
        let (plan, d) = compile("match j: R(t), S(s), t.k = s.k -> dummy(t.k, s.k)");
        let mut idx = IndexSet::new();
        let mut sink = Collect { all: vec![], prune_ml: false };
        let n = enumerate_valuations(&plan, &d, &mut idx, &[(TupleVar(0), 1)], &mut sink);
        assert_eq!(n, 1);
        assert_eq!(sink.all, vec![vec![1, 0]]);
    }

    #[test]
    fn inconsistent_seeds_yield_nothing() {
        let (plan, d) = compile("match j: R(t), S(s), t.k = s.k -> dummy(t.k, s.k)");
        let mut idx = IndexSet::new();
        let mut sink = Collect { all: vec![], prune_ml: false };
        // R row 0 has k=a, S row 1 has k=b: contradiction.
        let n = enumerate_valuations(
            &plan,
            &d,
            &mut idx,
            &[(TupleVar(0), 0), (TupleVar(1), 1)],
            &mut sink,
        );
        assert_eq!(n, 0);
        // Out-of-range seed row.
        let n = enumerate_valuations(&plan, &d, &mut idx, &[(TupleVar(0), 99)], &mut sink);
        assert_eq!(n, 0);
    }

    #[test]
    fn seed_violating_constant_filter_yields_nothing() {
        let (plan, d) = compile(r#"match j: R(t), S(s), t.k = s.k, t.v = "r0" -> dummy(t.k, s.k)"#);
        let mut idx = IndexSet::new();
        let mut sink = Collect { all: vec![], prune_ml: false };
        let n = enumerate_valuations(&plan, &d, &mut idx, &[(TupleVar(0), 1)], &mut sink);
        assert_eq!(n, 0);
    }

    #[test]
    fn three_way_chain_join() {
        let (plan, d) = compile("match j: R(t), S(s), R(u), t.k = s.k, s.k = u.k -> t.id = u.id");
        let mut idx = IndexSet::new();
        let mut sink = Collect { all: vec![], prune_ml: false };
        let n = enumerate_valuations(&plan, &d, &mut idx, &[], &mut sink);
        // k=a: R{0,1} x S{0} x R{0,1} = 4; k=b: R{2} x S{1} x R{2} = 1.
        assert_eq!(n, 5);
    }
}
