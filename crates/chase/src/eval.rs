//! The valuation enumerator: finds all valuations of a compiled rule whose
//! non-recursive precondition (relation atoms, constant and equality
//! predicates) holds in a dataset.
//!
//! Enumeration executes a [`RuleProgram`] — a join order compiled once per
//! rule from index cardinalities (see [`crate::program`]) — with an
//! explicit frame stack instead of recursion. At each step the candidate
//! source is, in preference order:
//!
//! 1. an inverted-index probe through an equality edge whose other side is
//!    already bound (the hash joins of Section V-A), compared by
//!    dictionary code — no `Value` is hashed or cloned per probe,
//! 2. an inverted-index probe on a constant predicate, compiled to its
//!    code once per program,
//! 3. a lazy full scan of the variable's relation (only for genuinely
//!    disconnected atoms, e.g. the all-pairs comparisons under a pure ML
//!    predicate — inherent, as the paper notes).
//!
//! Candidates are iterated as borrows of the index's postings storage and
//! bindings live in a caller-provided [`EvalScratch`], so a warmed
//! enumeration performs **no heap allocation** (asserted by the
//! `eval_noalloc` integration test).
//!
//! Recursive predicates never bind values, but the sink is notified the
//! moment both of their variables are bound so it can prune branches whose
//! ML predicate is false *and can never become validated*.
//!
//! The same program powers full enumeration (`Deduce`) and the seeded,
//! update-driven re-evaluation of `IncDeduce`: seeds pre-bind variables
//! and their steps are skipped; probe options are resolved against
//! whatever is bound at runtime, so a seed can enable a cheaper access
//! path than the static order assumed.

use crate::plan::{CompiledRule, RecPred};
use crate::program::RuleProgram;
use dcer_mrl::TupleVar;
use dcer_relation::{Dataset, IndexSet, Tuple, ValueDict};

/// Receiver for enumeration events.
pub trait ValuationSink {
    /// Whether this row may be bound to a tuple variable at all. The engine
    /// uses this to scope a rule's evaluation to the tuples HyPart
    /// distributed *for that rule* (sound: the rule's own distribution
    /// covers all its valuations; replicas for other rules only create
    /// redundant valuations that exist elsewhere anyway).
    fn admit_row(&mut self, var: TupleVar, row: u32) -> bool {
        let _ = (var, row);
        true
    }

    /// Both variables of a recursive predicate just became bound. Return
    /// `true` to prune this branch (only sound for predicates whose falsity
    /// is final).
    fn prune_rec(&mut self, pred: &RecPred, left: &Tuple, right: &Tuple) -> bool;

    /// A complete support valuation; `rows[i]` is the row (within the
    /// dataset's relation instance) bound to tuple variable `i`.
    fn visit(&mut self, rows: &[u32]);
}

/// Sentinel for "variable not bound" in the scratch binding array.
const UNBOUND: u32 = u32::MAX;

/// One backtracking level: iterates the candidate rows of one program step.
/// Plain data — frames live in the reusable scratch, never on the call
/// stack and never owning borrowed postings.
#[derive(Debug, Clone, Copy)]
struct Frame {
    /// Index into [`RuleProgram::steps`].
    step: u32,
    /// Index slot whose flat postings array is being iterated (probe
    /// frames only).
    slot: u32,
    /// Next candidate cursor: an absolute offset into the slot's postings
    /// for probes, a row position for scans.
    pos: u32,
    /// End of the candidate range (exclusive).
    end: u32,
    /// `true` when candidates are row positions `pos..end` of the
    /// relation itself (lazy scan — nothing is materialized).
    scan: bool,
}

/// Reusable enumeration state: the binding array and the frame stack.
///
/// Create once, pass to every [`enumerate_with_program`] call; after the
/// first call warms its capacity, subsequent enumerations of rules with no
/// more variables allocate nothing.
#[derive(Debug, Default)]
pub struct EvalScratch {
    /// `rows[var]` = bound row position, or [`UNBOUND`].
    rows: Vec<u32>,
    /// Explicit descent stack, one frame per bound (non-seed) variable.
    frames: Vec<Frame>,
}

impl EvalScratch {
    /// Empty scratch.
    pub fn new() -> EvalScratch {
        EvalScratch::default()
    }
}

/// Hot-path counters, accumulated locally and published to [`dcer_obs`]
/// once per enumeration (`eval.*` series) so `experiments stats` shows
/// where enumeration time goes.
#[derive(Debug, Default, Clone, Copy)]
struct EvalStats {
    /// Edge probe options priced (index lookups by bound join key).
    probes: u64,
    /// Constant probe options priced.
    const_probes: u64,
    /// Candidate rows drawn from chosen probes.
    probe_rows: u64,
    /// Scan fallbacks taken.
    scans: u64,
    /// Candidate rows drawn from scans.
    scan_rows: u64,
}

impl EvalStats {
    fn publish(&self, valuations: u64) {
        if !dcer_obs::enabled() {
            return;
        }
        dcer_obs::counter_add("eval.probes", self.probes);
        dcer_obs::counter_add("eval.const_probes", self.const_probes);
        dcer_obs::counter_add("eval.probe_rows", self.probe_rows);
        dcer_obs::counter_add("eval.scans", self.scans);
        dcer_obs::counter_add("eval.scan_rows", self.scan_rows);
        dcer_obs::counter_add("eval.valuations", valuations);
    }
}

/// Enumerate all support valuations of `plan` in `dataset`, with variables
/// in `seeds` pre-bound to the given rows. Returns the number of complete
/// valuations visited.
///
/// Convenience wrapper: compiles a throwaway [`RuleProgram`] and scratch
/// per call. Fixpoint loops should compile once and call
/// [`enumerate_with_program`] to stay allocation-free.
pub fn enumerate_valuations(
    plan: &CompiledRule,
    dataset: &Dataset,
    indexes: &mut IndexSet,
    seeds: &[(TupleVar, u32)],
    sink: &mut dyn ValuationSink,
) -> u64 {
    let program = RuleProgram::compile(plan, dataset, indexes);
    let mut scratch = EvalScratch::new();
    enumerate_with_program(&program, plan, dataset, indexes, seeds, &mut scratch, sink)
}

/// Run a compiled `program` (from [`RuleProgram::compile`] against the
/// same `dataset` / `indexes` generation) with `seeds` pre-bound. Returns
/// the number of complete valuations visited.
///
/// Seeds bypass [`ValuationSink::admit_row`] — delta-driven re-evaluation
/// must consider any locally hosted tuple — and are validated in a prelude
/// (constant filters, fully seeded equality edges and recursive
/// predicates) before enumeration starts.
pub fn enumerate_with_program(
    program: &RuleProgram,
    plan: &CompiledRule,
    dataset: &Dataset,
    indexes: &IndexSet,
    seeds: &[(TupleVar, u32)],
    scratch: &mut EvalScratch,
    sink: &mut dyn ValuationSink,
) -> u64 {
    if program.dead {
        return 0;
    }
    let n = program.num_vars;
    scratch.rows.clear();
    scratch.rows.resize(n, UNBOUND);
    scratch.frames.clear();

    // Pre-bind and validate seeds (tombstoned rows support nothing).
    for &(v, row) in seeds {
        let relation = dataset.relation(plan.atoms[v.0 as usize]);
        if row as usize >= relation.len() || !relation.is_live(row) {
            return 0;
        }
        scratch.rows[v.0 as usize] = row;
    }
    let mut stats = EvalStats::default();
    for &(v, _) in seeds {
        let step = &program.steps[program.step_of(v)];
        let row = scratch.rows[v.0 as usize];
        for c in &step.consts {
            if indexes.at(c.slot).code_of_row(row) != c.code {
                return 0;
            }
        }
    }
    // Equality edges and recursive predicates already fully bound by seeds.
    for p in &program.eq_pairs {
        let (lr, rr) = (scratch.rows[p.left_var as usize], scratch.rows[p.right_var as usize]);
        if lr != UNBOUND && rr != UNBOUND {
            let lc = indexes.at(p.left_slot).code_of_row(lr);
            if lc == ValueDict::NULL || lc != indexes.at(p.right_slot).code_of_row(rr) {
                return 0;
            }
        }
    }
    for p in &plan.rec_preds {
        let (l, r) = p.vars();
        let (lr, rr) = (scratch.rows[l.0 as usize], scratch.rows[r.0 as usize]);
        if lr != UNBOUND && rr != UNBOUND {
            let lt = &dataset.relation(plan.atoms[l.0 as usize]).tuples()[lr as usize];
            let rt = &dataset.relation(plan.atoms[r.0 as usize]).tuples()[rr as usize];
            if sink.prune_rec(p, lt, rt) {
                return 0;
            }
        }
    }

    let mut count = 0u64;
    let Some(first) = next_unbound_step(program, &scratch.rows, 0) else {
        // Everything seeded: the prelude validated the lone valuation.
        sink.visit(&scratch.rows);
        stats.publish(1);
        return 1;
    };
    let frame = make_frame(program, dataset, indexes, &scratch.rows, first, &mut stats);
    scratch.frames.push(frame);

    while let Some(top) = scratch.frames.len().checked_sub(1) {
        let f = scratch.frames[top];
        let step = &program.steps[f.step as usize];
        if f.pos >= f.end {
            // Exhausted: unbind and backtrack.
            scratch.rows[step.var as usize] = UNBOUND;
            scratch.frames.pop();
            continue;
        }
        scratch.frames[top].pos = f.pos + 1;
        let row = if f.scan { f.pos } else { indexes.at(f.slot).rows()[f.pos as usize] };
        // Scans walk raw positions and must skip tombstones themselves;
        // probed candidates self-filter (a tombstoned row's code column is
        // NULL, so the probing edge's or constant's check rejects it).
        if f.scan && !dataset.relation(step.rel).is_live(row) {
            continue;
        }
        if !sink.admit_row(TupleVar(step.var), row) {
            continue;
        }
        scratch.rows[step.var as usize] = row;
        if !candidate_passes(plan, dataset, indexes, &scratch.rows, step, row, sink) {
            // Stale binding is fine: overwritten by the next candidate,
            // cleared on frame exhaustion.
            continue;
        }
        match next_unbound_step(program, &scratch.rows, f.step as usize + 1) {
            Some(next) => {
                let frame = make_frame(program, dataset, indexes, &scratch.rows, next, &mut stats);
                scratch.frames.push(frame);
            }
            None => {
                count += 1;
                sink.visit(&scratch.rows);
            }
        }
    }
    stats.publish(count);
    count
}

/// First step at or after `from` whose variable is not already bound (the
/// bound ones are seeds; frame-bound steps are always behind `from`).
fn next_unbound_step(program: &RuleProgram, rows: &[u32], from: usize) -> Option<usize> {
    (from..program.steps.len()).find(|&i| rows[program.steps[i].var as usize] == UNBOUND)
}

/// Price the step's available probe options and open a frame over the
/// cheapest, falling back to a lazy scan when no option is usable.
fn make_frame(
    program: &RuleProgram,
    dataset: &Dataset,
    indexes: &IndexSet,
    rows: &[u32],
    step_idx: usize,
    stats: &mut EvalStats,
) -> Frame {
    let step = &program.steps[step_idx];
    let mut best: Option<(u32, u32, u32)> = None; // (slot, start, end)
    for c in &step.consts {
        stats.const_probes += 1;
        let (s, e) = indexes.at(c.slot).bucket_range(c.code);
        if best.is_none_or(|(_, bs, be)| e - s < be - bs) {
            best = Some((c.slot, s, e));
        }
    }
    for ep in &step.edges {
        let src = rows[ep.src_var as usize];
        if src == UNBOUND {
            continue;
        }
        stats.probes += 1;
        // A null join key yields `ValueDict::NULL`, whose bucket is empty:
        // nulls never join.
        let code = indexes.at(ep.src_slot).code_of_row(src);
        let (s, e) = indexes.at(ep.slot).bucket_range(code);
        if best.is_none_or(|(_, bs, be)| e - s < be - bs) {
            best = Some((ep.slot, s, e));
        }
    }
    match best {
        Some((slot, s, e)) => {
            stats.probe_rows += (e - s) as u64;
            Frame { step: step_idx as u32, slot, pos: s, end: e, scan: false }
        }
        None => {
            let len = dataset.relation(step.rel).len() as u32;
            stats.scans += 1;
            stats.scan_rows += len as u64;
            Frame { step: step_idx as u32, slot: 0, pos: 0, end: len, scan: true }
        }
    }
}

/// Run the step's checks against a freshly bound candidate, in the same
/// order as the recursive enumerator did: constant filters, then equality
/// edges, then recursive predicates.
fn candidate_passes(
    plan: &CompiledRule,
    dataset: &Dataset,
    indexes: &IndexSet,
    rows: &[u32],
    step: &crate::program::Step,
    row: u32,
    sink: &mut dyn ValuationSink,
) -> bool {
    for c in &step.consts {
        if indexes.at(c.slot).code_of_row(row) != c.code {
            return false;
        }
    }
    for c in &step.eq_checks {
        let other = rows[c.other_var as usize];
        if other == UNBOUND {
            continue;
        }
        let code = indexes.at(c.slot).code_of_row(row);
        if code == ValueDict::NULL || code != indexes.at(c.other_slot).code_of_row(other) {
            return false;
        }
    }
    for &pi in &step.rec_checks {
        let p = &plan.rec_preds[pi as usize];
        let (l, r) = p.vars();
        let (lr, rr) = (rows[l.0 as usize], rows[r.0 as usize]);
        if lr == UNBOUND || rr == UNBOUND {
            continue;
        }
        let lt = &dataset.relation(plan.atoms[l.0 as usize]).tuples()[lr as usize];
        let rt = &dataset.relation(plan.atoms[r.0 as usize]).tuples()[rr as usize];
        if sink.prune_rec(p, lt, rt) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facts::MlSigTable;
    use crate::plan::CompiledRule;
    use dcer_mrl::parse_rules;
    use dcer_relation::{Catalog, RelationSchema, Value, ValueType};
    use std::sync::Arc;

    struct Collect {
        all: Vec<Vec<u32>>,
        prune_ml: bool,
    }
    impl ValuationSink for Collect {
        fn prune_rec(&mut self, pred: &RecPred, _l: &Tuple, _r: &Tuple) -> bool {
            self.prune_ml && matches!(pred, RecPred::Ml { .. })
        }
        fn visit(&mut self, rows: &[u32]) {
            self.all.push(rows.to_vec());
        }
    }

    fn catalog() -> Arc<Catalog> {
        Arc::new(
            Catalog::from_schemas(vec![
                RelationSchema::of("R", &[("k", ValueType::Str), ("v", ValueType::Str)]),
                RelationSchema::of("S", &[("k", ValueType::Str), ("w", ValueType::Str)]),
            ])
            .unwrap(),
        )
    }

    fn data() -> Dataset {
        let mut d = Dataset::new(catalog());
        d.insert(0, vec!["a".into(), "r0".into()]).unwrap(); // R row 0
        d.insert(0, vec!["a".into(), "r1".into()]).unwrap(); // R row 1
        d.insert(0, vec!["b".into(), "r2".into()]).unwrap(); // R row 2
        d.insert(1, vec!["a".into(), "s0".into()]).unwrap(); // S row 0
        d.insert(1, vec!["b".into(), "s1".into()]).unwrap(); // S row 1
        d.insert(1, vec![Value::Null, "s2".into()]).unwrap(); // S row 2
        d
    }

    fn compile(src: &str) -> (CompiledRule, Dataset) {
        let d = data();
        let rules = parse_rules(d.catalog(), src).unwrap();
        let sigs = MlSigTable::build(&rules);
        (CompiledRule::compile(&rules, &sigs, 0), d)
    }

    #[test]
    fn equi_join_enumerates_exact_matches() {
        let (plan, d) = compile("match j: R(t), S(s), t.k = s.k -> dummy(t.k, s.k)");
        let mut idx = IndexSet::new();
        let mut sink = Collect { all: vec![], prune_ml: false };
        let n = enumerate_valuations(&plan, &d, &mut idx, &[], &mut sink);
        // (R0,S0), (R1,S0), (R2,S1) — nulls never join.
        assert_eq!(n, 3);
        let mut got = sink.all;
        got.sort();
        assert_eq!(got, vec![vec![0, 0], vec![1, 0], vec![2, 1]]);
    }

    #[test]
    fn self_join_includes_reflexive_and_both_orders() {
        let (plan, d) = compile("match j: R(t), R(s), t.k = s.k -> t.id = s.id");
        let mut idx = IndexSet::new();
        let mut sink = Collect { all: vec![], prune_ml: false };
        let n = enumerate_valuations(&plan, &d, &mut idx, &[], &mut sink);
        // k=a: rows {0,1} -> 4 pairs; k=b: row {2} -> 1 pair.
        assert_eq!(n, 5);
    }

    #[test]
    fn constant_filter_prunes_scan() {
        let (plan, d) = compile(r#"match j: R(t), S(s), t.k = s.k, t.v = "r2" -> dummy(t.k, s.k)"#);
        let mut idx = IndexSet::new();
        let mut sink = Collect { all: vec![], prune_ml: false };
        let n = enumerate_valuations(&plan, &d, &mut idx, &[], &mut sink);
        assert_eq!(n, 1);
        assert_eq!(sink.all, vec![vec![2, 1]]);
    }

    #[test]
    fn unmatchable_constant_short_circuits() {
        let (plan, d) = compile(r#"match j: R(t), S(s), t.k = s.k, t.v = "zz" -> dummy(t.k, s.k)"#);
        let mut idx = IndexSet::new();
        let mut sink = Collect { all: vec![], prune_ml: false };
        assert_eq!(enumerate_valuations(&plan, &d, &mut idx, &[], &mut sink), 0);
        // Seeds can't resurrect a dead program either.
        assert_eq!(enumerate_valuations(&plan, &d, &mut idx, &[(TupleVar(0), 0)], &mut sink), 0);
    }

    #[test]
    fn disconnected_atoms_cross_product() {
        let (plan, d) = compile("match j: R(t), S(s) -> dummy(t.k, s.k)");
        let mut idx = IndexSet::new();
        let mut sink = Collect { all: vec![], prune_ml: false };
        let n = enumerate_valuations(&plan, &d, &mut idx, &[], &mut sink);
        assert_eq!(n, 9); // 3 x 3
    }

    #[test]
    fn ml_pruning_cuts_branches() {
        let (plan, d) = compile("match j: R(t), S(s), m(t.k, s.k) -> dummy(t.k, s.k)");
        let mut idx = IndexSet::new();
        let mut sink = Collect { all: vec![], prune_ml: true };
        let n = enumerate_valuations(&plan, &d, &mut idx, &[], &mut sink);
        assert_eq!(n, 0);
        let mut sink = Collect { all: vec![], prune_ml: false };
        let n = enumerate_valuations(&plan, &d, &mut idx, &[], &mut sink);
        assert_eq!(n, 9);
    }

    #[test]
    fn seeds_restrict_enumeration() {
        let (plan, d) = compile("match j: R(t), S(s), t.k = s.k -> dummy(t.k, s.k)");
        let mut idx = IndexSet::new();
        let mut sink = Collect { all: vec![], prune_ml: false };
        let n = enumerate_valuations(&plan, &d, &mut idx, &[(TupleVar(0), 1)], &mut sink);
        assert_eq!(n, 1);
        assert_eq!(sink.all, vec![vec![1, 0]]);
    }

    #[test]
    fn fully_seeded_valuation_is_validated() {
        let (plan, d) = compile("match j: R(t), S(s), t.k = s.k -> dummy(t.k, s.k)");
        let mut idx = IndexSet::new();
        let mut sink = Collect { all: vec![], prune_ml: false };
        let n = enumerate_valuations(
            &plan,
            &d,
            &mut idx,
            &[(TupleVar(0), 0), (TupleVar(1), 0)],
            &mut sink,
        );
        assert_eq!(n, 1);
        assert_eq!(sink.all, vec![vec![0, 0]]);
    }

    #[test]
    fn inconsistent_seeds_yield_nothing() {
        let (plan, d) = compile("match j: R(t), S(s), t.k = s.k -> dummy(t.k, s.k)");
        let mut idx = IndexSet::new();
        let mut sink = Collect { all: vec![], prune_ml: false };
        // R row 0 has k=a, S row 1 has k=b: contradiction.
        let n = enumerate_valuations(
            &plan,
            &d,
            &mut idx,
            &[(TupleVar(0), 0), (TupleVar(1), 1)],
            &mut sink,
        );
        assert_eq!(n, 0);
        // Out-of-range seed row.
        let n = enumerate_valuations(&plan, &d, &mut idx, &[(TupleVar(0), 99)], &mut sink);
        assert_eq!(n, 0);
    }

    #[test]
    fn seed_violating_constant_filter_yields_nothing() {
        let (plan, d) = compile(r#"match j: R(t), S(s), t.k = s.k, t.v = "r0" -> dummy(t.k, s.k)"#);
        let mut idx = IndexSet::new();
        let mut sink = Collect { all: vec![], prune_ml: false };
        let n = enumerate_valuations(&plan, &d, &mut idx, &[(TupleVar(0), 1)], &mut sink);
        assert_eq!(n, 0);
    }

    #[test]
    fn three_way_chain_join() {
        let (plan, d) = compile("match j: R(t), S(s), R(u), t.k = s.k, s.k = u.k -> t.id = u.id");
        let mut idx = IndexSet::new();
        let mut sink = Collect { all: vec![], prune_ml: false };
        let n = enumerate_valuations(&plan, &d, &mut idx, &[], &mut sink);
        // k=a: R{0,1} x S{0} x R{0,1} = 4; k=b: R{2} x S{1} x R{2} = 1.
        assert_eq!(n, 5);
    }

    #[test]
    fn program_reuse_with_scratch_matches_fresh_compile() {
        let (plan, d) = compile("match j: R(t), S(s), t.k = s.k -> dummy(t.k, s.k)");
        let mut idx = IndexSet::new();
        let program = RuleProgram::compile(&plan, &d, &mut idx);
        let mut scratch = EvalScratch::new();
        for _ in 0..3 {
            let mut sink = Collect { all: vec![], prune_ml: false };
            let n = enumerate_with_program(&program, &plan, &d, &idx, &[], &mut scratch, &mut sink);
            assert_eq!(n, 3);
        }
        let mut sink = Collect { all: vec![], prune_ml: false };
        let n = enumerate_with_program(
            &program,
            &plan,
            &d,
            &idx,
            &[(TupleVar(1), 0)],
            &mut scratch,
            &mut sink,
        );
        assert_eq!(n, 2); // R0 and R1 join S0.
    }
}
