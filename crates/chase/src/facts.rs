//! Deduced facts, the chase state `Γ`, ML predicate signatures and the
//! memoizing ML oracle.

use crate::union_find::MatchSet;
use dcer_ml::MlRegistry;
use dcer_mrl::{Consequence, Predicate, RuleSet};
use dcer_relation::{AttrId, RelId, Tid, Tuple, Value};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// A deduced element of `Γ`: either an id match or a validated ML
/// prediction. Pairs are stored with `first <= second` (canonical form), so
/// facts deduced by different workers compare equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Fact {
    /// `(t.id, s.id)` — the tuples denote the same entity.
    Id(Tid, Tid),
    /// A validated prediction of the ML predicate with this signature
    /// (see [`MlSigTable`]) on the given tuple pair.
    Ml(u16, Tid, Tid),
}

impl Fact {
    /// Canonical id fact.
    pub fn id(a: Tid, b: Tid) -> Fact {
        if a <= b {
            Fact::Id(a, b)
        } else {
            Fact::Id(b, a)
        }
    }

    /// Canonical validated-ML fact. `symmetric` signatures normalize the
    /// pair order; asymmetric ones preserve it.
    pub fn ml(sig: u16, a: Tid, b: Tid, symmetric: bool) -> Fact {
        if symmetric && b < a {
            Fact::Ml(sig, b, a)
        } else {
            Fact::Ml(sig, a, b)
        }
    }

    /// The two tuple identities the fact involves.
    pub fn tids(&self) -> (Tid, Tid) {
        match *self {
            Fact::Id(a, b) | Fact::Ml(_, a, b) => (a, b),
        }
    }

    /// Exact wire size of an id fact: the two tuple ids.
    pub const ID_WIRE_BYTES: usize = 2 * std::mem::size_of::<Tid>();

    /// Exact wire size of a validated-ML fact: the two tuple ids plus the
    /// predicate signature.
    pub const ML_WIRE_BYTES: usize = 2 * std::mem::size_of::<Tid>() + std::mem::size_of::<u16>();

    /// Wire size in bytes (for communication accounting), derived from the
    /// field layouts rather than hardcoded so the cost model tracks the
    /// actual representation.
    pub fn size_bytes(&self) -> usize {
        match self {
            Fact::Id(..) => Fact::ID_WIRE_BYTES,
            Fact::Ml(..) => Fact::ML_WIRE_BYTES,
        }
    }
}

/// The signature of an ML predicate occurrence: model plus the relations and
/// attribute vectors it is applied to. Rules sharing a signature share
/// classifier calls *and* validated predictions.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MlSig {
    /// Interned model index (into [`RuleSet::model_names`]).
    pub model: u16,
    /// Relation and attribute vector of the left side.
    pub left: (RelId, Vec<AttrId>),
    /// Relation and attribute vector of the right side.
    pub right: (RelId, Vec<AttrId>),
}

impl MlSig {
    /// A signature is symmetric when both sides have the same relation and
    /// attributes; symmetric signatures admit pair-order normalization.
    pub fn is_symmetric(&self) -> bool {
        self.left == self.right
    }
}

/// Interning table for ML predicate signatures across a rule set.
#[derive(Debug, Clone, Default)]
pub struct MlSigTable {
    sigs: Vec<MlSig>,
    index: HashMap<MlSig, u16>,
    /// Signature ids that appear as a rule *head* — predictions of these
    /// signatures can become validated during the chase, so a false
    /// classifier answer for them is not final ("waitable").
    head_sigs: HashSet<u16>,
}

impl MlSigTable {
    /// Build the table from a rule set (body and head ML predicates).
    pub fn build(rules: &RuleSet) -> MlSigTable {
        let mut table = MlSigTable::default();
        for rule in rules.rules() {
            for p in &rule.body {
                if let Predicate::Ml { model, left, left_attrs, right, right_attrs } = p {
                    table.intern(
                        rules,
                        model,
                        rule.rel_of(*left),
                        left_attrs,
                        rule.rel_of(*right),
                        right_attrs,
                    );
                }
            }
            if let Consequence::Ml { model, left, left_attrs, right, right_attrs } = &rule.head {
                let sig = table.intern(
                    rules,
                    model,
                    rule.rel_of(*left),
                    left_attrs,
                    rule.rel_of(*right),
                    right_attrs,
                );
                table.head_sigs.insert(sig);
            }
        }
        table
    }

    fn intern(
        &mut self,
        rules: &RuleSet,
        model: &str,
        rel_l: RelId,
        attrs_l: &[AttrId],
        rel_r: RelId,
        attrs_r: &[AttrId],
    ) -> u16 {
        let sig = MlSig {
            model: rules.model_index(model).expect("validated rule set interns all models"),
            left: (rel_l, attrs_l.to_vec()),
            right: (rel_r, attrs_r.to_vec()),
        };
        if let Some(&i) = self.index.get(&sig) {
            return i;
        }
        let i = self.sigs.len() as u16;
        self.index.insert(sig.clone(), i);
        self.sigs.push(sig);
        i
    }

    /// Look up the id of a signature occurrence.
    pub fn sig_id(
        &self,
        rules: &RuleSet,
        model: &str,
        rel_l: RelId,
        attrs_l: &[AttrId],
        rel_r: RelId,
        attrs_r: &[AttrId],
    ) -> Option<u16> {
        let sig = MlSig {
            model: rules.model_index(model)?,
            left: (rel_l, attrs_l.to_vec()),
            right: (rel_r, attrs_r.to_vec()),
        };
        self.index.get(&sig).copied()
    }

    /// Signature by id.
    pub fn sig(&self, id: u16) -> &MlSig {
        &self.sigs[id as usize]
    }

    /// Number of distinct signatures.
    pub fn len(&self) -> usize {
        self.sigs.len()
    }

    /// Whether there are no ML predicates at all.
    pub fn is_empty(&self) -> bool {
        self.sigs.is_empty()
    }

    /// Whether predictions of this signature can be validated by some rule
    /// head (making a false classifier answer non-final).
    pub fn is_waitable(&self, id: u16) -> bool {
        self.head_sigs.contains(&id)
    }
}

/// The evolving chase state: `E_id` plus validated ML predictions.
#[derive(Debug, Clone, Default)]
pub struct ChaseState {
    /// Id matches with transitive closure.
    pub matches: MatchSet,
    /// Validated ML predictions, in canonical [`Fact`] form.
    pub validated: HashSet<Fact>,
}

impl ChaseState {
    /// Fresh state (Γ reflexive, nothing validated).
    pub fn new() -> ChaseState {
        ChaseState::default()
    }

    /// Apply a fact. Returns `None` if it was already known; for a new id
    /// fact, returns the two pre-merge classes (used for update-driven
    /// re-evaluation); for a new ML fact, returns empty class info.
    pub fn apply(&mut self, fact: Fact) -> Option<(Vec<Tid>, Vec<Tid>)> {
        match fact {
            Fact::Id(a, b) => self.matches.merge(a, b),
            Fact::Ml(..) => {
                if self.validated.insert(fact) {
                    Some((Vec::new(), Vec::new()))
                } else {
                    None
                }
            }
        }
    }

    /// Whether an id fact already holds.
    pub fn holds_id(&mut self, a: Tid, b: Tid) -> bool {
        self.matches.are_matched(a, b)
    }

    /// Whether an ML prediction with this signature is validated for the
    /// pair (canonicalized when symmetric).
    pub fn holds_ml(&self, sig: u16, a: Tid, b: Tid, symmetric: bool) -> bool {
        self.validated.contains(&Fact::ml(sig, a, b, symmetric))
    }

    /// Total facts beyond reflexivity: merged pairs + validated predictions.
    pub fn fact_count(&mut self) -> usize {
        self.matches.num_pairs() + self.validated.len()
    }

    /// The state as a canonical fact batch: every validated ML prediction
    /// plus one spanning `eq(first, t)` fact per non-trivial cluster member
    /// — the smallest set whose transitive closure rebuilds `E_id`. This is
    /// both the checkpoint wire format (replay through [`ChaseState::apply`]
    /// is idempotent) and what a static deducer announces to peers.
    pub fn to_delta(&mut self) -> crate::DeltaBatch {
        let mut facts: Vec<Fact> = self.validated.iter().copied().collect();
        for cluster in self.matches.clusters() {
            let first = cluster[0];
            for &t in &cluster[1..] {
                facts.push(Fact::id(first, t));
            }
        }
        crate::DeltaBatch::new(facts)
    }
}

/// Miss-batch chunk size for pool-dispatched classifier scoring. Fixed (not
/// derived from pool size) so chunk boundaries — and therefore any
/// per-batch caches inside vectorized models — are identical at every pool
/// size.
const ORACLE_CHUNK: usize = 512;

/// Memoizing ML oracle: evaluates classifier predicates, caching one boolean
/// per `(signature, tuple pair)` — the paper's inverted index on ML
/// predicates (Section V-A, structure (1b)).
pub struct MlOracle {
    models: Vec<Arc<dyn dcer_ml::MlModel>>,
    cache: HashMap<(u16, Tid, Tid), bool>,
    calls: u64,
    hits: u64,
}

impl std::fmt::Debug for MlOracle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MlOracle")
            .field("models", &self.models.len())
            .field("cached", &self.cache.len())
            .field("calls", &self.calls)
            .field("hits", &self.hits)
            .finish()
    }
}

impl MlOracle {
    /// Bind the rule set's model names against a registry. Fails with the
    /// missing model's name if one is unregistered.
    pub fn new(rules: &RuleSet, registry: &MlRegistry) -> Result<MlOracle, String> {
        let mut models = Vec::with_capacity(rules.model_names().len());
        for name in rules.model_names() {
            let m =
                registry.get(name).ok_or_else(|| format!("ML model `{name}` not registered"))?;
            models.push(m.clone());
        }
        Ok(MlOracle { models, cache: HashMap::new(), calls: 0, hits: 0 })
    }

    /// Evaluate the classifier of `sig` on a tuple pair, memoized.
    /// `scope` partitions the memo: with MQO-style sharing every caller
    /// passes 0 (rules with the same signature share results); the
    /// `DMatch_noMQO` baseline passes a per-rule scope, paying for every
    /// rule separately.
    pub fn predict(
        &mut self,
        table: &MlSigTable,
        sig_id: u16,
        left: &Tuple,
        right: &Tuple,
        scope: u16,
    ) -> bool {
        let sig = table.sig(sig_id);
        let sig_key = sig_id ^ (scope << 8);
        let key = if sig.is_symmetric() && right.tid < left.tid {
            (sig_key, right.tid, left.tid)
        } else {
            (sig_key, left.tid, right.tid)
        };
        if let Some(&v) = self.cache.get(&key) {
            self.hits += 1;
            return v;
        }
        // Recompute in the canonical orientation so symmetric caching is
        // consistent even for slightly asymmetric model implementations.
        let (l, r) = if key.1 == left.tid { (left, right) } else { (right, left) };
        let lv: Vec<Value> = sig.left.1.iter().map(|&a| l.get(a).clone()).collect();
        let rv: Vec<Value> = sig.right.1.iter().map(|&a| r.get(a).clone()).collect();
        let v = self.models[sig.model as usize].predict(&lv, &rv);
        self.calls += 1;
        self.cache.insert(key, v);
        v
    }

    /// Score a whole batch of candidate pairs for one signature, memoized —
    /// the batch counterpart of [`MlOracle::predict`], with identical
    /// counter semantics for any probe multiset.
    ///
    /// One probe pass partitions the batch: cached keys resolve as hits;
    /// the *first* occurrence of an unseen canonical key becomes a miss;
    /// later duplicates of a pending miss count as hits (the scalar loop
    /// would have inserted the first answer before re-probing). The misses
    /// are then scored as one [`dcer_ml::MlModel::classify_batch`] call —
    /// chunked across `pool` when large enough, with chunk boundaries
    /// independent of pool size so results are reproducible — inserted
    /// into the memo, and fanned back out to every waiting batch position.
    ///
    /// `waitable` semantics live in the caller (a false answer for a
    /// waitable signature defers finality rather than pruning); the oracle
    /// answers identically either way.
    pub fn predict_batch(
        &mut self,
        table: &MlSigTable,
        sig_id: u16,
        pairs: &[(&Tuple, &Tuple)],
        scope: u16,
        pool: Option<&dcer_pool::WorkPool>,
        out: &mut Vec<bool>,
    ) {
        out.clear();
        out.resize(pairs.len(), false);
        let sig = table.sig(sig_id);
        let sig_key = sig_id ^ (scope << 8);
        let symmetric = sig.is_symmetric();
        let mut pending: HashMap<(u16, Tid, Tid), usize> = HashMap::new();
        let mut miss_keys: Vec<(u16, Tid, Tid)> = Vec::new();
        let mut miss_waiters: Vec<Vec<usize>> = Vec::new();
        let mut miss_inputs: Vec<(Vec<Value>, Vec<Value>)> = Vec::new();
        for (i, &(left, right)) in pairs.iter().enumerate() {
            let key = if symmetric && right.tid < left.tid {
                (sig_key, right.tid, left.tid)
            } else {
                (sig_key, left.tid, right.tid)
            };
            if let Some(&v) = self.cache.get(&key) {
                self.hits += 1;
                out[i] = v;
            } else if let Some(&mi) = pending.get(&key) {
                self.hits += 1;
                miss_waiters[mi].push(i);
            } else {
                pending.insert(key, miss_keys.len());
                // Extract attribute vectors in the canonical orientation,
                // exactly as the scalar path recomputes.
                let (l, r) = if key.1 == left.tid { (left, right) } else { (right, left) };
                let lv: Vec<Value> = sig.left.1.iter().map(|&a| l.get(a).clone()).collect();
                let rv: Vec<Value> = sig.right.1.iter().map(|&a| r.get(a).clone()).collect();
                miss_keys.push(key);
                miss_waiters.push(vec![i]);
                miss_inputs.push((lv, rv));
            }
        }
        self.calls += miss_keys.len() as u64;
        let model = &self.models[sig.model as usize];
        let answers: Vec<bool> = match pool {
            Some(pool) if pool.size() > 1 && miss_inputs.len() > ORACLE_CHUNK => {
                let tasks: Vec<_> = miss_inputs
                    .chunks(ORACLE_CHUNK)
                    .map(|chunk| {
                        let model = Arc::clone(model);
                        move || model.classify_batch(chunk)
                    })
                    .collect();
                pool.run(tasks, None).into_iter().flatten().collect()
            }
            _ => model.classify_batch(&miss_inputs),
        };
        for ((key, waiters), v) in miss_keys.into_iter().zip(miss_waiters).zip(answers) {
            self.cache.insert(key, v);
            for i in waiters {
                out[i] = v;
            }
        }
    }

    /// Relative per-prediction cost of the model behind a signature
    /// ([`dcer_ml::MlModel::cost_hint`]) — input to selectivity × cost
    /// predicate ordering.
    pub fn model_cost(&self, table: &MlSigTable, sig_id: u16) -> f64 {
        self.models[table.sig(sig_id).model as usize].cost_hint()
    }

    /// Number of real classifier invocations.
    pub fn calls(&self) -> u64 {
        self.calls
    }

    /// Number of cache hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcer_ml::EqualTextClassifier;
    use dcer_relation::{Catalog, Dataset, RelationSchema, ValueType};

    fn t(row: u32) -> Tid {
        Tid::new(0, row)
    }

    #[test]
    fn fact_canonicalization() {
        assert_eq!(Fact::id(t(2), t(1)), Fact::id(t(1), t(2)));
        assert_eq!(Fact::ml(0, t(2), t(1), true), Fact::ml(0, t(1), t(2), true));
        assert_ne!(Fact::ml(0, t(2), t(1), false), Fact::ml(0, t(1), t(2), false));
    }

    fn setup() -> (Arc<Catalog>, RuleSet) {
        let cat = Arc::new(
            Catalog::from_schemas(vec![RelationSchema::of(
                "R",
                &[("a", ValueType::Str), ("b", ValueType::Str)],
            )])
            .unwrap(),
        );
        let rules = dcer_mrl::parse_rules(
            &cat,
            "match r1: R(t), R(s), m(t.a, s.a) -> t.id = s.id;
             match r2: R(t), R(s), t.b = s.b -> m(t.a, s.a);
             match r3: R(t), R(s), m(t.b, s.b) -> t.id = s.id",
        )
        .unwrap();
        (cat, rules)
    }

    #[test]
    fn sig_table_interns_and_tracks_heads() {
        let (_, rules) = setup();
        let table = MlSigTable::build(&rules);
        // m(t.a, s.a) shared by r1 body and r2 head; m(t.b, s.b) in r3 body.
        assert_eq!(table.len(), 2);
        let sig_a = table.sig_id(&rules, "m", 0, &[0], 0, &[0]).unwrap();
        let sig_b = table.sig_id(&rules, "m", 0, &[1], 0, &[1]).unwrap();
        assert!(table.is_waitable(sig_a), "validated by r2's head");
        assert!(!table.is_waitable(sig_b));
        assert!(table.sig(sig_a).is_symmetric());
    }

    #[test]
    fn state_apply_dedups() {
        let mut st = ChaseState::new();
        assert!(st.apply(Fact::id(t(1), t(2))).is_some());
        assert!(st.apply(Fact::id(t(2), t(1))).is_none());
        assert!(st.apply(Fact::Ml(0, t(1), t(2))).is_some());
        assert!(st.apply(Fact::Ml(0, t(1), t(2))).is_none());
        assert!(st.holds_id(t(1), t(2)));
        assert!(st.holds_ml(0, t(2), t(1), true));
        assert!(!st.holds_ml(0, t(2), t(1), false));
        assert_eq!(st.fact_count(), 2);
    }

    #[test]
    fn oracle_caches_symmetrically() {
        let (cat, rules) = setup();
        let table = MlSigTable::build(&rules);
        let mut reg = MlRegistry::new();
        reg.register("m", Arc::new(EqualTextClassifier));
        let mut oracle = MlOracle::new(&rules, &reg).unwrap();

        let mut ds = Dataset::new(cat);
        let a = ds.insert(0, vec!["x".into(), "y".into()]).unwrap();
        let b = ds.insert(0, vec!["x".into(), "z".into()]).unwrap();
        let (ta, tb) = (ds.tuple(a).unwrap().clone(), ds.tuple(b).unwrap().clone());
        let sig = table.sig_id(&rules, "m", 0, &[0], 0, &[0]).unwrap();
        assert!(oracle.predict(&table, sig, &ta, &tb, 0));
        assert!(oracle.predict(&table, sig, &tb, &ta, 0));
        // A different scope is a separate memo partition.
        assert!(oracle.predict(&table, sig, &ta, &tb, 1));
        assert_eq!(oracle.calls(), 2);
        assert_eq!(oracle.hits(), 1);
    }

    #[test]
    fn oracle_reports_missing_model() {
        let (_, rules) = setup();
        let reg = MlRegistry::new();
        assert!(MlOracle::new(&rules, &reg).unwrap_err().contains('m'));
    }

    /// Shared fixture for the batch tests: oracle + sig table + a handful
    /// of R(a, b) tuples with colliding `a` values.
    fn batch_setup() -> (RuleSet, MlSigTable, MlOracle, Vec<Tuple>) {
        let (cat, rules) = setup();
        let table = MlSigTable::build(&rules);
        let mut reg = MlRegistry::new();
        reg.register("m", Arc::new(EqualTextClassifier));
        let oracle = MlOracle::new(&rules, &reg).unwrap();
        let mut ds = Dataset::new(cat);
        let texts = ["x", "x", "y", "z", "x"];
        let tuples: Vec<Tuple> = texts
            .iter()
            .enumerate()
            .map(|(i, a)| {
                let tid = ds.insert(0, vec![(*a).into(), format!("b{i}").into()]).unwrap();
                ds.tuple(tid).unwrap().clone()
            })
            .collect();
        (rules, table, oracle, tuples)
    }

    /// A batch with duplicate pairs, symmetric flips and already-memoized
    /// pairs spends exactly one classifier call per distinct unordered
    /// pair; everything else is a hit.
    #[test]
    fn batch_dedups_duplicates_symmetric_and_memoized_pairs() {
        let (rules, table, mut oracle, ts) = batch_setup();
        let sig = table.sig_id(&rules, "m", 0, &[0], 0, &[0]).unwrap();
        assert!(table.sig(sig).is_symmetric());

        // Pre-memoize (t0, t1) through the scalar path.
        assert!(oracle.predict(&table, sig, &ts[0], &ts[1], 0));
        assert_eq!((oracle.calls(), oracle.hits()), (1, 0));

        // Batch: a memoized pair, its symmetric flip, a fresh pair twice
        // (once flipped), and one more fresh pair. Distinct unordered
        // fresh pairs: {t2,t3} and {t0,t4} -> exactly 2 new calls.
        let pairs: Vec<(&Tuple, &Tuple)> = vec![
            (&ts[0], &ts[1]), // memo hit
            (&ts[1], &ts[0]), // memo hit (symmetric canonical key)
            (&ts[2], &ts[3]), // miss
            (&ts[3], &ts[2]), // duplicate of the pending miss -> hit
            (&ts[2], &ts[3]), // duplicate again -> hit
            (&ts[0], &ts[4]), // miss
        ];
        let mut got = Vec::new();
        oracle.predict_batch(&table, sig, &pairs, 0, None, &mut got);
        assert_eq!(got, vec![true, true, false, false, false, true]);
        assert_eq!(oracle.calls(), 3, "one call per distinct unordered pair");
        assert_eq!(oracle.hits(), 4, "6 probes - 2 fresh misses = 4 hits");

        // Scalar re-probes of everything the batch computed are pure hits.
        assert!(!oracle.predict(&table, sig, &ts[3], &ts[2], 0));
        assert_eq!((oracle.calls(), oracle.hits()), (3, 5));
    }

    /// Batch and scalar agree on answers *and* counters for the same probe
    /// multiset, including asymmetric signatures and separate memo scopes.
    #[test]
    fn batch_counters_match_scalar_for_same_multiset() {
        let (rules, table, mut batch_oracle, ts) = batch_setup();
        let (_, _, mut scalar_oracle, _) = batch_setup();
        let sig_a = table.sig_id(&rules, "m", 0, &[0], 0, &[0]).unwrap();
        let sig_b = table.sig_id(&rules, "m", 0, &[1], 0, &[1]).unwrap();
        for sig in [sig_a, sig_b] {
            for scope in [0u16, 3] {
                let mut pairs: Vec<(&Tuple, &Tuple)> = Vec::new();
                for l in &ts {
                    for r in &ts {
                        pairs.push((l, r));
                        if l.tid.row % 2 == 0 {
                            pairs.push((r, l));
                        }
                    }
                }
                let scalar: Vec<bool> = pairs
                    .iter()
                    .map(|&(l, r)| scalar_oracle.predict(&table, sig, l, r, scope))
                    .collect();
                let mut batch = Vec::new();
                batch_oracle.predict_batch(&table, sig, &pairs, scope, None, &mut batch);
                assert_eq!(batch, scalar);
                assert_eq!(batch_oracle.calls(), scalar_oracle.calls());
                assert_eq!(batch_oracle.hits(), scalar_oracle.hits());
            }
        }
    }

    /// Pool-dispatched scoring (miss count above the chunk size) returns
    /// the same answers and counters as inline scoring.
    #[test]
    fn pooled_batch_matches_inline_batch() {
        let (cat, rules) = setup();
        let table = MlSigTable::build(&rules);
        let mut reg = MlRegistry::new();
        reg.register("m", Arc::new(EqualTextClassifier));
        let mut inline_oracle = MlOracle::new(&rules, &reg).unwrap();
        let mut pooled_oracle = MlOracle::new(&rules, &reg).unwrap();
        let mut ds = Dataset::new(cat);
        let tuples: Vec<Tuple> = (0..40)
            .map(|i| {
                let tid = ds
                    .insert(0, vec![format!("a{}", i % 7).into(), format!("b{i}").into()])
                    .unwrap();
                ds.tuple(tid).unwrap().clone()
            })
            .collect();
        let sig = table.sig_id(&rules, "m", 0, &[0], 0, &[0]).unwrap();
        // 40 x 40 = 1600 probes, 820 distinct unordered pairs > ORACLE_CHUNK.
        let pairs: Vec<(&Tuple, &Tuple)> =
            tuples.iter().flat_map(|l| tuples.iter().map(move |r| (l, r))).collect();
        let pool = dcer_pool::WorkPool::new(4);
        let (mut inline_out, mut pooled_out) = (Vec::new(), Vec::new());
        inline_oracle.predict_batch(&table, sig, &pairs, 0, None, &mut inline_out);
        pooled_oracle.predict_batch(&table, sig, &pairs, 0, Some(&pool), &mut pooled_out);
        assert_eq!(inline_out, pooled_out);
        assert_eq!(inline_oracle.calls(), pooled_oracle.calls());
        assert_eq!(inline_oracle.hits(), pooled_oracle.hits());
        assert_eq!(inline_oracle.calls(), 820);
    }

    /// The oracle itself is waitability-agnostic: a waitable signature
    /// (here `m(t.a, s.a)`, validated by r2's head) gets the same answers
    /// and counters through the batch interface as through scalar probes.
    /// Deferral of false answers is the *caller's* contract — the engine
    /// only batch-prunes unwaitable signatures (see `EngineSink`), pinned
    /// end-to-end by `engine::tests::batching_defers_waitable_identically`.
    #[test]
    fn waitable_sigs_answer_identically_in_batch() {
        let (rules, table, mut oracle, ts) = batch_setup();
        let sig_a = table.sig_id(&rules, "m", 0, &[0], 0, &[0]).unwrap();
        assert!(table.is_waitable(sig_a));
        let pairs: Vec<(&Tuple, &Tuple)> = vec![(&ts[0], &ts[1]), (&ts[0], &ts[2])];
        let mut batch = Vec::new();
        oracle.predict_batch(&table, sig_a, &pairs, 0, None, &mut batch);
        let mut fresh = batch_setup().2;
        let scalar: Vec<bool> =
            pairs.iter().map(|&(l, r)| fresh.predict(&table, sig_a, l, r, 0)).collect();
        assert_eq!(batch, scalar);
        assert_eq!(oracle.calls(), fresh.calls());
    }
}
