//! Rule compilation: MRLs are compiled once into a form the valuation
//! enumerator consumes directly — constant filters pushed to atoms,
//! equality predicates as join edges, and the *recursive* predicates (id and
//! ML, whose truth can grow during the chase) separated out.

use crate::facts::MlSigTable;
use dcer_mrl::{Consequence, Predicate, Rule, RuleSet, TupleVar};
use dcer_relation::{AttrId, RelId, Value};

/// An instantiatable equality join edge `left.attr = right.attr`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EqEdge {
    /// Left occurrence.
    pub left: (TupleVar, AttrId),
    /// Right occurrence.
    pub right: (TupleVar, AttrId),
}

/// A recursive predicate of the precondition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecPred {
    /// `u.id = v.id`.
    Id {
        /// Left variable.
        left: TupleVar,
        /// Right variable.
        right: TupleVar,
    },
    /// `M(u[Ā], v[B̄])`, interned to its signature.
    Ml {
        /// Signature id in the rule set's [`MlSigTable`].
        sig: u16,
        /// Left variable.
        left: TupleVar,
        /// Right variable.
        right: TupleVar,
        /// Whether the signature admits symmetric normalization.
        symmetric: bool,
        /// Whether a false classifier answer can later be overridden by a
        /// validated prediction (the signature appears in some rule head).
        waitable: bool,
    },
}

impl RecPred {
    /// The two variables the predicate connects.
    pub fn vars(&self) -> (TupleVar, TupleVar) {
        match *self {
            RecPred::Id { left, right } | RecPred::Ml { left, right, .. } => (left, right),
        }
    }
}

/// A compiled consequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompiledHead {
    /// Deduce a match between the two variables' tuples.
    Id(TupleVar, TupleVar),
    /// Validate an ML prediction of the given signature.
    Ml {
        /// Signature id.
        sig: u16,
        /// Left variable.
        left: TupleVar,
        /// Right variable.
        right: TupleVar,
        /// Symmetric-normalization flag of the signature.
        symmetric: bool,
    },
}

/// A rule compiled for evaluation.
#[derive(Debug, Clone)]
pub struct CompiledRule {
    /// Index of the source rule in the rule set.
    pub rule_idx: usize,
    /// Rule name (diagnostics).
    pub name: String,
    /// Relation per tuple variable.
    pub atoms: Vec<RelId>,
    /// Constant filters per tuple variable.
    pub const_filters: Vec<Vec<(AttrId, Value)>>,
    /// Equality join edges.
    pub eq_edges: Vec<EqEdge>,
    /// Recursive (id / ML) predicates of the precondition.
    pub rec_preds: Vec<RecPred>,
    /// The consequence.
    pub head: CompiledHead,
}

impl CompiledRule {
    /// Compile one rule. `rules` provides model interning; `sigs` must have
    /// been built from the same rule set.
    pub fn compile(rules: &RuleSet, sigs: &MlSigTable, rule_idx: usize) -> CompiledRule {
        let rule: &Rule = &rules.rules()[rule_idx];
        let n = rule.num_vars();
        let mut const_filters: Vec<Vec<(AttrId, Value)>> = vec![Vec::new(); n];
        let mut eq_edges = Vec::new();
        let mut rec_preds = Vec::new();
        for p in &rule.body {
            match p {
                Predicate::ConstEq { var, attr, value } => {
                    const_filters[var.0 as usize].push((*attr, value.clone()));
                }
                Predicate::AttrEq { left, right } => {
                    eq_edges.push(EqEdge { left: *left, right: *right });
                }
                Predicate::IdEq { left, right } => {
                    rec_preds.push(RecPred::Id { left: *left, right: *right });
                }
                Predicate::Ml { model, left, left_attrs, right, right_attrs } => {
                    let sig = sigs
                        .sig_id(
                            rules,
                            model,
                            rule.rel_of(*left),
                            left_attrs,
                            rule.rel_of(*right),
                            right_attrs,
                        )
                        .expect("signature interned at build time");
                    rec_preds.push(RecPred::Ml {
                        sig,
                        left: *left,
                        right: *right,
                        symmetric: sigs.sig(sig).is_symmetric(),
                        waitable: sigs.is_waitable(sig),
                    });
                }
            }
        }
        let head = match &rule.head {
            Consequence::IdEq { left, right } => CompiledHead::Id(*left, *right),
            Consequence::Ml { model, left, left_attrs, right, right_attrs } => {
                let sig = sigs
                    .sig_id(
                        rules,
                        model,
                        rule.rel_of(*left),
                        left_attrs,
                        rule.rel_of(*right),
                        right_attrs,
                    )
                    .expect("head signature interned at build time");
                CompiledHead::Ml {
                    sig,
                    left: *left,
                    right: *right,
                    symmetric: sigs.sig(sig).is_symmetric(),
                }
            }
        };
        CompiledRule {
            rule_idx,
            name: rule.name.clone(),
            atoms: rule.atoms.clone(),
            const_filters,
            eq_edges,
            rec_preds,
            head,
        }
    }

    /// Compile every rule of a set.
    pub fn compile_all(rules: &RuleSet, sigs: &MlSigTable) -> Vec<CompiledRule> {
        (0..rules.len()).map(|i| CompiledRule::compile(rules, sigs, i)).collect()
    }

    /// Number of tuple variables.
    pub fn num_vars(&self) -> usize {
        self.atoms.len()
    }

    /// Whether the precondition has any recursive predicate (the rule needs
    /// re-examination as `Γ` grows).
    pub fn is_recursive(&self) -> bool {
        !self.rec_preds.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcer_relation::{Catalog, RelationSchema, ValueType};
    use std::sync::Arc;

    fn setup() -> (RuleSet, MlSigTable) {
        let cat = Arc::new(
            Catalog::from_schemas(vec![
                RelationSchema::of(
                    "R",
                    &[("k", ValueType::Str), ("x", ValueType::Str), ("n", ValueType::Int)],
                ),
                RelationSchema::of("S", &[("k", ValueType::Str), ("y", ValueType::Str)]),
            ])
            .unwrap(),
        );
        let rules = dcer_mrl::parse_rules(
            &cat,
            r#"match phi: R(a), R(b), S(c),
                a.k = b.k, b.k = c.k, a.n = 7, a.x = "v",
                m(a.x, b.x), a.id = b.id
                -> m(a.x, b.x);
               match psi: R(a), R(b), m(a.x, b.x) -> a.id = b.id"#,
        )
        .unwrap();
        let sigs = MlSigTable::build(&rules);
        (rules, sigs)
    }

    #[test]
    fn compilation_buckets_predicates() {
        let (rules, sigs) = setup();
        let c = CompiledRule::compile(&rules, &sigs, 0);
        assert_eq!(c.num_vars(), 3);
        assert_eq!(c.eq_edges.len(), 2);
        assert_eq!(c.const_filters[0].len(), 2);
        assert!(c.const_filters[1].is_empty());
        assert_eq!(c.rec_preds.len(), 2);
        assert!(c.is_recursive());
        match c.head {
            CompiledHead::Ml { symmetric, .. } => assert!(symmetric),
            other => panic!("unexpected head {other:?}"),
        }
    }

    #[test]
    fn shared_signature_between_body_and_head() {
        let (rules, sigs) = setup();
        let phi = CompiledRule::compile(&rules, &sigs, 0);
        let psi = CompiledRule::compile(&rules, &sigs, 1);
        let phi_body_sig = phi
            .rec_preds
            .iter()
            .find_map(|p| match p {
                RecPred::Ml { sig, waitable, .. } => Some((*sig, *waitable)),
                _ => None,
            })
            .unwrap();
        let psi_body_sig = psi
            .rec_preds
            .iter()
            .find_map(|p| match p {
                RecPred::Ml { sig, .. } => Some(*sig),
                _ => None,
            })
            .unwrap();
        assert_eq!(phi_body_sig.0, psi_body_sig, "same (model, attrs) interns once");
        assert!(phi_body_sig.1, "phi's head validates this signature");
    }

    #[test]
    fn nonrecursive_rule_detected() {
        let cat = Arc::new(
            Catalog::from_schemas(vec![RelationSchema::of("R", &[("k", ValueType::Str)])]).unwrap(),
        );
        let rules =
            dcer_mrl::parse_rules(&cat, "match a: R(t), R(s), t.k = s.k -> t.id = s.id").unwrap();
        let sigs = MlSigTable::build(&rules);
        let c = CompiledRule::compile(&rules, &sigs, 0);
        assert!(!c.is_recursive());
        assert_eq!(CompiledRule::compile_all(&rules, &sigs).len(), 1);
    }
}
