//! Provenance log for delete-and-rederive (DRed-style) maintenance.
//!
//! Every fact entering the chase state is logged once, in fire order, with
//! the support valuation and recursive antecedents of its *first*
//! derivation. Because a fact can only be derived from facts established
//! strictly earlier, the log is acyclic in derivation order: a single
//! in-order pass that rebuilds the state from surviving entries computes
//! the complete deletion cascade — an entry whose support tuple died, or
//! whose antecedents no longer hold in the rebuilt prefix state, is
//! dropped, and everything that transitively depended on it fails its own
//! antecedent check later in the same pass.
//!
//! Dropped facts are *over*-deleted: an alternative derivation may exist
//! that the log never saw (only first derivations are recorded). The
//! caller rederives by re-running rule evaluation after the cascade, which
//! restores exactly the facts with surviving alternative support.

use crate::deps::Pending;
use crate::facts::{ChaseState, Fact};
use dcer_relation::Tid;
use std::collections::HashSet;

/// Why a logged fact holds.
#[derive(Debug, Clone)]
pub enum Provenance {
    /// Derived locally: the support valuation's tuple identities plus the
    /// recursive predicates the derivation consumed (including those that
    /// already held when the valuation was enumerated).
    Local {
        /// Tuple identities of the support valuation.
        support: Vec<Tid>,
        /// Recursive antecedents of the derivation.
        antecedents: Vec<Pending>,
    },
    /// Received from another worker in a BSP exchange: locally unsupported,
    /// survives unless its own tuples die or the sender retracts it.
    External,
}

/// Append-only, fire-ordered log of `(fact, provenance)` pairs. Entries are
/// unique per fact (callers log only on novelty).
#[derive(Debug, Default)]
pub struct SupportLog {
    entries: Vec<(Fact, Provenance)>,
}

impl SupportLog {
    /// Empty log.
    pub fn new() -> SupportLog {
        SupportLog::default()
    }

    /// Append a fact with its provenance. Callers must log in derivation
    /// order and only for novel facts.
    pub fn push(&mut self, fact: Fact, provenance: Provenance) {
        self.entries.push((fact, provenance));
    }

    /// Number of logged facts.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Discard all entries (crash recovery rebuilds from a checkpoint).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Read-only view of the fire-ordered `(fact, provenance)` entries —
    /// the serving layer exports these at snapshot-publish time so readers
    /// can answer `explain` without ever touching the live engine.
    pub fn entries(&self) -> &[(Fact, Provenance)] {
        &self.entries
    }

    /// Run the deletion cascade: drop every entry invalidated by the dead
    /// base tuples in `dead_tids` or explicitly named in `dead_facts`
    /// (retraction notices from other workers), plus everything downstream
    /// of a dropped entry. Returns the state rebuilt from the surviving
    /// entries and the facts that were dropped; the log retains only the
    /// survivors.
    pub fn retract(
        &mut self,
        dead_tids: &HashSet<Tid>,
        dead_facts: &HashSet<Fact>,
    ) -> (ChaseState, Vec<Fact>) {
        let mut state = ChaseState::new();
        let mut dropped = Vec::new();
        let entries = std::mem::take(&mut self.entries);
        for (fact, prov) in entries {
            let (a, b) = fact.tids();
            let survives = !dead_tids.contains(&a)
                && !dead_tids.contains(&b)
                && !dead_facts.contains(&fact)
                && match &prov {
                    Provenance::External => true,
                    Provenance::Local { support, antecedents } => {
                        support.iter().all(|t| !dead_tids.contains(t))
                            && antecedents.iter().all(|p| p.holds(&mut state))
                    }
                };
            if survives {
                state.apply(fact);
                self.entries.push((fact, prov));
            } else {
                dropped.push(fact);
            }
        }
        (state, dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(r: u32) -> Tid {
        Tid::new(0, r)
    }

    fn local(support: &[Tid], antecedents: Vec<Pending>) -> Provenance {
        Provenance::Local { support: support.to_vec(), antecedents }
    }

    #[test]
    fn deleting_support_cascades_through_dependents() {
        let mut log = SupportLog::new();
        // f1 from tuples {1,2}; f2 depends on f1 holding.
        log.push(Fact::id(t(1), t(2)), local(&[t(1), t(2)], vec![]));
        log.push(Fact::id(t(3), t(4)), local(&[t(3), t(4)], vec![Pending::Id(t(1), t(2))]));
        // Independent fact.
        log.push(Fact::id(t(5), t(6)), local(&[t(5), t(6)], vec![]));
        let dead: HashSet<Tid> = [t(2)].into_iter().collect();
        let (mut state, dropped) = log.retract(&dead, &HashSet::new());
        assert_eq!(dropped, vec![Fact::id(t(1), t(2)), Fact::id(t(3), t(4))]);
        assert!(!state.holds_id(t(3), t(4)), "cascade removed the dependent");
        assert!(state.holds_id(t(5), t(6)), "independent fact survives");
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn transitively_implied_antecedents_keep_entries_alive() {
        let mut log = SupportLog::new();
        log.push(Fact::id(t(1), t(2)), local(&[t(1), t(2)], vec![]));
        log.push(Fact::id(t(2), t(3)), local(&[t(2), t(3)], vec![]));
        // Depends on 1~3, which holds only via transitivity of the first two.
        log.push(Fact::id(t(5), t(6)), local(&[t(5), t(6)], vec![Pending::Id(t(1), t(3))]));
        let (mut state, dropped) = log.retract(&HashSet::new(), &HashSet::new());
        assert!(dropped.is_empty());
        assert!(state.holds_id(t(5), t(6)));
    }

    #[test]
    fn external_facts_survive_unless_named_or_tuple_dies() {
        let mut log = SupportLog::new();
        log.push(Fact::id(t(1), t(2)), Provenance::External);
        log.push(Fact::id(t(3), t(4)), Provenance::External);
        let dead_facts: HashSet<Fact> = [Fact::id(t(1), t(2))].into_iter().collect();
        let (mut state, dropped) = log.retract(&HashSet::new(), &dead_facts);
        assert_eq!(dropped, vec![Fact::id(t(1), t(2))]);
        assert!(state.holds_id(t(3), t(4)));
        let dead: HashSet<Tid> = [t(4)].into_iter().collect();
        let (_, dropped) = log.retract(&dead, &HashSet::new());
        assert_eq!(dropped, vec![Fact::id(t(3), t(4))]);
        assert!(log.is_empty());
    }

    #[test]
    fn ml_antecedents_participate_in_the_cascade() {
        let mut log = SupportLog::new();
        log.push(Fact::ml(2, t(1), t(2), true), local(&[t(1), t(2)], vec![]));
        log.push(
            Fact::id(t(3), t(4)),
            local(&[t(3), t(4)], vec![Pending::Ml { sig: 2, a: t(1), b: t(2), symmetric: true }]),
        );
        let dead: HashSet<Tid> = [t(1)].into_iter().collect();
        let (mut state, dropped) = log.retract(&dead, &HashSet::new());
        assert_eq!(dropped.len(), 2);
        assert!(!state.holds_id(t(3), t(4)));
    }
}
