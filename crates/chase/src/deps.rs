//! The bounded dependency store `H` (Section V-A, structure (2)).
//!
//! A dependency `l₁ ∧ … ∧ l_n → l` records a support valuation whose
//! recursive predicates `l_i` were unsatisfied when it was enumerated:
//! whenever all `l_i` become valid, `l` must be enforced — *without*
//! re-running the join. `H` is a pure cache bounded by a capacity `K`
//! ("determined by the available memory" in the paper): when full, new
//! dependencies are dropped and the engine falls back to update-driven join
//! re-evaluation, so correctness never depends on `K`.

use crate::facts::{ChaseState, Fact};
use dcer_relation::Tid;

/// An instantiated recursive predicate awaited by a dependency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pending {
    /// Awaiting `a ~ b` in `E_id`.
    Id(Tid, Tid),
    /// Awaiting validation of signature `sig` on `(a, b)`.
    Ml {
        /// Signature id.
        sig: u16,
        /// Left tuple.
        a: Tid,
        /// Right tuple.
        b: Tid,
        /// Whether lookups normalize pair order.
        symmetric: bool,
    },
}

impl Pending {
    /// Whether this instantiated predicate holds in `state`.
    pub(crate) fn holds(&self, state: &mut ChaseState) -> bool {
        match *self {
            Pending::Id(a, b) => state.holds_id(a, b),
            Pending::Ml { sig, a, b, symmetric } => state.holds_ml(sig, a, b, symmetric),
        }
    }

    /// The canonical [`Fact`] this predicate awaits — the form provenance
    /// exports use, so antecedents can be checked against a fact set.
    pub fn to_fact(&self) -> Fact {
        match *self {
            Pending::Id(a, b) => Fact::id(a, b),
            Pending::Ml { sig, a, b, symmetric } => Fact::ml(sig, a, b, symmetric),
        }
    }
}

#[derive(Debug, Clone)]
struct Dep {
    /// Antecedents still awaited — pruned destructively as they validate.
    antecedents: Vec<Pending>,
    head: Fact,
    /// The support valuation's tuple identities, for provenance: when one
    /// is deleted the dependency is meaningless and is purged.
    support: Vec<Tid>,
    /// Every state-dependent antecedent of the derivation (both the ones
    /// awaited and the ones that already held at record time) — the
    /// pruning above is destructive, so this immutable copy is what flows
    /// into the support log when the head fires.
    provenance: Vec<Pending>,
}

/// A dependency whose antecedents all became valid: the head to enforce,
/// plus the provenance the support log needs (delete-and-rederive walks
/// it to decide whether the fact survives a base deletion).
#[derive(Debug, Clone)]
pub struct Ready {
    /// The fact to apply.
    pub head: Fact,
    /// Tuple identities of the support valuation.
    pub support: Vec<Tid>,
    /// Full antecedent list at record time (not the pruned remainder).
    pub antecedents: Vec<Pending>,
}

/// The bounded store of dependencies.
#[derive(Debug)]
pub struct DepStore {
    deps: Vec<Dep>,
    capacity: usize,
    recorded: u64,
    dropped: u64,
    fired: u64,
}

impl DepStore {
    /// Store with capacity `K`.
    pub fn new(capacity: usize) -> DepStore {
        DepStore { deps: Vec::new(), capacity, recorded: 0, dropped: 0, fired: 0 }
    }

    /// Record a dependency. `antecedents` are the still-unsatisfied
    /// recursive predicates, `support` the valuation's tuple identities and
    /// `held` the recursive predicates that already held at record time
    /// (needed for complete provenance). Returns `false` (and counts a
    /// drop) when `H` is full — the caller must then rely on update-driven
    /// re-evaluation.
    pub fn record(
        &mut self,
        antecedents: Vec<Pending>,
        head: Fact,
        support: Vec<Tid>,
        held: Vec<Pending>,
    ) -> bool {
        debug_assert!(!antecedents.is_empty(), "satisfied valuations fire directly");
        if self.deps.len() >= self.capacity {
            self.dropped += 1;
            return false;
        }
        let mut provenance = held;
        provenance.extend(antecedents.iter().copied());
        self.deps.push(Dep { antecedents, head, support, provenance });
        self.recorded += 1;
        true
    }

    /// Collect all dependencies that became ready (every antecedent valid),
    /// removing them; also removes dependencies whose head already holds
    /// (the paper's rule: once `l` is validated, all dependencies `… → l`
    /// are dropped). The caller applies the returned heads and calls again
    /// until the result is empty.
    pub fn collect_ready(&mut self, state: &mut ChaseState) -> Vec<Ready> {
        let mut ready = Vec::new();
        self.deps.retain_mut(|dep| {
            let head_holds = match dep.head {
                Fact::Id(a, b) => state.holds_id(a, b),
                Fact::Ml(..) => state.validated.contains(&dep.head),
            };
            if head_holds {
                return false;
            }
            dep.antecedents.retain(|p| !p.holds(state));
            if dep.antecedents.is_empty() {
                ready.push(Ready {
                    head: dep.head,
                    support: std::mem::take(&mut dep.support),
                    antecedents: std::mem::take(&mut dep.provenance),
                });
                false
            } else {
                true
            }
        });
        self.fired += ready.len() as u64;
        ready
    }

    /// Drop every dependency whose support valuation or head references a
    /// deleted tuple: with its support gone the implication is vacuous, and
    /// letting it fire later would resurrect a retracted derivation.
    pub fn purge(&mut self, dead: &std::collections::HashSet<Tid>) {
        if dead.is_empty() {
            return;
        }
        self.deps.retain(|dep| {
            let (a, b) = dep.head.tids();
            !dead.contains(&a)
                && !dead.contains(&b)
                && !dep.support.iter().any(|t| dead.contains(t))
        });
    }

    /// Whether any dependency was ever dropped for capacity.
    pub fn overflowed(&self) -> bool {
        self.dropped > 0
    }

    /// Live dependencies currently stored.
    pub fn len(&self) -> usize {
        self.deps.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.deps.is_empty()
    }

    /// (recorded, fired, dropped) counters.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.recorded, self.fired, self.dropped)
    }

    /// Discard all live dependencies (crash recovery re-enumerates them
    /// from scratch). Lifetime counters are kept — in particular `dropped`,
    /// so [`DepStore::overflowed`] stays conservative across a recovery.
    pub fn reset(&mut self) {
        self.deps.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(r: u32) -> Tid {
        Tid::new(0, r)
    }

    fn rec(h: &mut DepStore, antecedents: Vec<Pending>, head: Fact) -> bool {
        h.record(antecedents, head, Vec::new(), Vec::new())
    }

    #[test]
    fn fires_when_all_antecedents_hold() {
        let mut h = DepStore::new(10);
        let mut st = ChaseState::new();
        rec(&mut h, vec![Pending::Id(t(1), t(2)), Pending::Id(t(3), t(4))], Fact::id(t(5), t(6)));
        assert!(h.collect_ready(&mut st).is_empty());
        st.apply(Fact::id(t(1), t(2)));
        assert!(h.collect_ready(&mut st).is_empty(), "one antecedent left");
        assert_eq!(h.len(), 1);
        st.apply(Fact::id(t(3), t(4)));
        let ready = h.collect_ready(&mut st);
        assert_eq!(ready.len(), 1);
        assert_eq!(ready[0].head, Fact::id(t(5), t(6)));
        assert!(h.is_empty());
        assert_eq!(h.counters(), (1, 1, 0));
    }

    #[test]
    fn transitive_equivalence_satisfies_id_antecedents() {
        let mut h = DepStore::new(10);
        let mut st = ChaseState::new();
        rec(&mut h, vec![Pending::Id(t(1), t(3))], Fact::id(t(8), t(9)));
        st.apply(Fact::id(t(1), t(2)));
        st.apply(Fact::id(t(2), t(3)));
        assert_eq!(h.collect_ready(&mut st).len(), 1);
    }

    #[test]
    fn ml_antecedent_requires_validation() {
        let mut h = DepStore::new(10);
        let mut st = ChaseState::new();
        rec(
            &mut h,
            vec![Pending::Ml { sig: 3, a: t(2), b: t(1), symmetric: true }],
            Fact::id(t(5), t(6)),
        );
        assert!(h.collect_ready(&mut st).is_empty());
        st.apply(Fact::ml(3, t(1), t(2), true));
        assert_eq!(h.collect_ready(&mut st).len(), 1);
    }

    #[test]
    fn dependency_with_already_valid_head_is_dropped() {
        let mut h = DepStore::new(10);
        let mut st = ChaseState::new();
        st.apply(Fact::id(t(5), t(6)));
        rec(&mut h, vec![Pending::Id(t(1), t(2))], Fact::id(t(5), t(6)));
        assert!(h.collect_ready(&mut st).is_empty());
        assert!(h.is_empty(), "head already holds — dropped, not fired");
    }

    #[test]
    fn capacity_overflow_reported() {
        let mut h = DepStore::new(1);
        assert!(rec(&mut h, vec![Pending::Id(t(1), t(2))], Fact::id(t(3), t(4))));
        assert!(!rec(&mut h, vec![Pending::Id(t(5), t(6))], Fact::id(t(7), t(8))));
        assert!(h.overflowed());
        assert_eq!(h.counters().2, 1);
    }

    #[test]
    fn satisfied_antecedents_are_pruned_incrementally() {
        let mut h = DepStore::new(10);
        let mut st = ChaseState::new();
        rec(&mut h, vec![Pending::Id(t(1), t(2)), Pending::Id(t(3), t(4))], Fact::id(t(5), t(6)));
        st.apply(Fact::id(t(1), t(2)));
        h.collect_ready(&mut st);
        // Internal antecedent list shrank: satisfying the second now fires.
        st.apply(Fact::id(t(3), t(4)));
        assert_eq!(h.collect_ready(&mut st).len(), 1);
    }

    #[test]
    fn ready_carries_full_provenance() {
        let mut h = DepStore::new(10);
        let mut st = ChaseState::new();
        let held = vec![Pending::Id(t(7), t(8))];
        h.record(
            vec![Pending::Id(t(1), t(2))],
            Fact::id(t(5), t(6)),
            vec![t(1), t(2), t(7)],
            held.clone(),
        );
        st.apply(Fact::id(t(1), t(2)));
        let ready = h.collect_ready(&mut st);
        assert_eq!(ready.len(), 1);
        assert_eq!(ready[0].support, vec![t(1), t(2), t(7)]);
        // Provenance = held preds followed by the original antecedents.
        assert_eq!(ready[0].antecedents, vec![Pending::Id(t(7), t(8)), Pending::Id(t(1), t(2))]);
    }

    #[test]
    fn purge_drops_deps_touching_dead_tuples() {
        let mut h = DepStore::new(10);
        let mut st = ChaseState::new();
        h.record(vec![Pending::Id(t(1), t(2))], Fact::id(t(5), t(6)), vec![t(9)], Vec::new());
        h.record(vec![Pending::Id(t(1), t(2))], Fact::id(t(3), t(4)), vec![t(3)], Vec::new());
        let dead: std::collections::HashSet<Tid> = [t(9)].into_iter().collect();
        h.purge(&dead);
        assert_eq!(h.len(), 1, "only the dep supported by a live valuation remains");
        st.apply(Fact::id(t(1), t(2)));
        let ready = h.collect_ready(&mut st);
        assert_eq!(ready.len(), 1);
        assert_eq!(ready[0].head, Fact::id(t(3), t(4)));
    }
}
