//! The equivalence relation `E_id` over deduced matches (Section V-A):
//! a union-find over tuple identities with per-class member lists, giving
//! O(α) match tests, transitive closure for free, and the class projections
//! the incremental engine and the master's router need.

use dcer_relation::Tid;
use std::collections::HashMap;

/// A set of matches closed under reflexivity/symmetry/transitivity —
/// the id part of the paper's `Γ` together with its equivalence `E_id`.
#[derive(Debug, Clone, Default)]
pub struct MatchSet {
    /// Tid -> dense slot.
    slots: HashMap<Tid, u32>,
    /// Slot -> Tid (inverse of `slots`).
    tids: Vec<Tid>,
    /// Union-find parent per slot.
    parent: Vec<u32>,
    /// Rank per root slot.
    rank: Vec<u8>,
    /// Members per root slot (moved to the winning root on union).
    members: Vec<Vec<Tid>>,
    /// Number of union operations that actually merged two classes.
    merges: usize,
}

impl MatchSet {
    /// Empty match set (every tuple implicitly matches itself).
    pub fn new() -> MatchSet {
        MatchSet::default()
    }

    fn slot(&mut self, t: Tid) -> u32 {
        if let Some(&s) = self.slots.get(&t) {
            return s;
        }
        let s = self.tids.len() as u32;
        self.slots.insert(t, s);
        self.tids.push(t);
        self.parent.push(s);
        self.rank.push(0);
        self.members.push(vec![t]);
        s
    }

    fn find(&mut self, mut s: u32) -> u32 {
        // Path halving.
        while self.parent[s as usize] != s {
            let gp = self.parent[self.parent[s as usize] as usize];
            self.parent[s as usize] = gp;
            s = gp;
        }
        s
    }

    /// Record the match `(a, b)`. Returns the two pre-merge member lists
    /// `(class_of_a, class_of_b)` if the classes were distinct (i.e., the
    /// match is new information), or `None` if already matched.
    pub fn merge(&mut self, a: Tid, b: Tid) -> Option<(Vec<Tid>, Vec<Tid>)> {
        if a == b {
            return None;
        }
        let (sa, sb) = (self.slot(a), self.slot(b));
        let (ra, rb) = (self.find(sa), self.find(sb));
        if ra == rb {
            return None;
        }
        let before_a = self.members[ra as usize].clone();
        let before_b = self.members[rb as usize].clone();
        let (winner, loser) =
            if self.rank[ra as usize] >= self.rank[rb as usize] { (ra, rb) } else { (rb, ra) };
        if self.rank[winner as usize] == self.rank[loser as usize] {
            self.rank[winner as usize] += 1;
        }
        self.parent[loser as usize] = winner;
        let moved = std::mem::take(&mut self.members[loser as usize]);
        self.members[winner as usize].extend(moved);
        self.merges += 1;
        Some((before_a, before_b))
    }

    /// Whether `a` and `b` are matched (reflexive).
    pub fn are_matched(&mut self, a: Tid, b: Tid) -> bool {
        if a == b {
            return true;
        }
        match (self.slots.get(&a).copied(), self.slots.get(&b).copied()) {
            (Some(sa), Some(sb)) => self.find(sa) == self.find(sb),
            _ => false,
        }
    }

    /// Batched [`MatchSet::are_matched`]: answer many probes in one pass,
    /// resolving each distinct tid's root once (probe batches from join
    /// windows share tids heavily, so this saves repeated find walks).
    /// Answers are a snapshot — a subsequent [`MatchSet::merge`] (visible
    /// as a [`MatchSet::merge_count`] bump) can invalidate them.
    pub fn are_matched_batch(&mut self, pairs: &[(Tid, Tid)], out: &mut Vec<bool>) {
        out.clear();
        out.reserve(pairs.len());
        let mut roots: HashMap<Tid, Option<u32>> = HashMap::with_capacity(pairs.len().min(64));
        for &(a, b) in pairs {
            if a == b {
                out.push(true);
                continue;
            }
            let mut root_of = |uf: &mut MatchSet, t: Tid| -> Option<u32> {
                if let Some(&r) = roots.get(&t) {
                    return r;
                }
                let r = uf.slots.get(&t).copied().map(|s| uf.find(s));
                roots.insert(t, r);
                r
            };
            let ra = root_of(self, a);
            let rb = root_of(self, b);
            out.push(matches!((ra, rb), (Some(x), Some(y)) if x == y));
        }
    }

    /// All members of the class of `t` (including `t`); just `[t]` if `t`
    /// was never merged.
    pub fn class_of(&mut self, t: Tid) -> Vec<Tid> {
        match self.slots.get(&t).copied() {
            Some(s) => {
                let r = self.find(s);
                self.members[r as usize].clone()
            }
            None => vec![t],
        }
    }

    /// Number of effective (class-merging) `merge` calls so far.
    pub fn merge_count(&self) -> usize {
        self.merges
    }

    /// All non-singleton equivalence classes, each sorted, the list sorted
    /// by first member — a canonical form for comparing outcomes.
    pub fn clusters(&mut self) -> Vec<Vec<Tid>> {
        let roots: Vec<u32> = (0..self.parent.len() as u32)
            .filter(|&s| {
                let r = self.find(s);
                r == s && self.members[s as usize].len() > 1
            })
            .collect();
        let mut out: Vec<Vec<Tid>> = roots
            .into_iter()
            .map(|r| {
                let mut m = self.members[r as usize].clone();
                m.sort_unstable();
                m
            })
            .collect();
        out.sort();
        out
    }

    /// All matched pairs `(a, b)` with `a < b` — the paper's `Γ` restricted
    /// to non-reflexive id matches. Quadratic in class sizes; meant for
    /// evaluation against ground truth.
    pub fn all_pairs(&mut self) -> Vec<(Tid, Tid)> {
        let mut pairs = Vec::new();
        for cluster in self.clusters() {
            for i in 0..cluster.len() {
                for j in i + 1..cluster.len() {
                    pairs.push((cluster[i], cluster[j]));
                }
            }
        }
        pairs.sort_unstable();
        pairs
    }

    /// Number of matched pairs (without materializing them).
    pub fn num_pairs(&mut self) -> usize {
        self.clusters().iter().map(|c| c.len() * (c.len() - 1) / 2).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(row: u32) -> Tid {
        Tid::new(0, row)
    }

    #[test]
    fn reflexive_by_default() {
        let mut m = MatchSet::new();
        assert!(m.are_matched(t(1), t(1)));
        assert!(!m.are_matched(t(1), t(2)));
    }

    #[test]
    fn transitivity_via_union() {
        let mut m = MatchSet::new();
        assert!(m.merge(t(1), t(2)).is_some());
        assert!(m.merge(t(2), t(3)).is_some());
        assert!(m.are_matched(t(1), t(3)));
        assert!(m.merge(t(1), t(3)).is_none(), "already implied");
        assert_eq!(m.merge_count(), 2);
    }

    #[test]
    fn merge_reports_pre_merge_classes() {
        let mut m = MatchSet::new();
        m.merge(t(1), t(2));
        m.merge(t(3), t(4));
        let (a, b) = m.merge(t(2), t(4)).unwrap();
        let mut a = a;
        let mut b = b;
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, vec![t(1), t(2)]);
        assert_eq!(b, vec![t(3), t(4)]);
    }

    #[test]
    fn self_merge_is_noop() {
        let mut m = MatchSet::new();
        assert!(m.merge(t(5), t(5)).is_none());
        assert_eq!(m.merge_count(), 0);
    }

    #[test]
    fn clusters_and_pairs() {
        let mut m = MatchSet::new();
        m.merge(t(1), t(2));
        m.merge(t(2), t(3));
        m.merge(t(7), t(8));
        let clusters = m.clusters();
        assert_eq!(clusters, vec![vec![t(1), t(2), t(3)], vec![t(7), t(8)]]);
        assert_eq!(m.num_pairs(), 4);
        assert_eq!(m.all_pairs(), vec![(t(1), t(2)), (t(1), t(3)), (t(2), t(3)), (t(7), t(8))]);
    }

    #[test]
    fn batch_probe_matches_scalar_probe() {
        let mut m = MatchSet::new();
        m.merge(t(1), t(2));
        m.merge(t(2), t(3));
        m.merge(t(7), t(8));
        let pairs: Vec<(Tid, Tid)> = (0..10)
            .flat_map(|i| (0..10).map(move |j| (t(i), t(j))))
            .chain([(t(1), t(3)), (t(1), t(3))]) // repeated probes share root lookups
            .collect();
        let mut batch = Vec::new();
        m.are_matched_batch(&pairs, &mut batch);
        assert_eq!(batch.len(), pairs.len());
        for (&(a, b), &got) in pairs.iter().zip(&batch) {
            assert_eq!(got, m.are_matched(a, b), "{a:?} vs {b:?}");
        }
        // A later merge invalidates the snapshot, flagged by merge_count.
        let before = m.merge_count();
        m.merge(t(3), t(7));
        assert_ne!(m.merge_count(), before);
        assert!(m.are_matched(t(1), t(8)));
    }

    #[test]
    fn class_of_unknown_tid_is_singleton() {
        let mut m = MatchSet::new();
        assert_eq!(m.class_of(t(42)), vec![t(42)]);
    }

    #[test]
    fn cross_relation_tids_stay_separate() {
        let mut m = MatchSet::new();
        m.merge(Tid::new(0, 1), Tid::new(0, 2));
        assert!(!m.are_matched(Tid::new(0, 1), Tid::new(1, 1)));
    }

    #[test]
    fn large_chain_is_fully_connected() {
        let mut m = MatchSet::new();
        for i in 0..999 {
            m.merge(t(i), t(i + 1));
        }
        assert!(m.are_matched(t(0), t(999)));
        assert_eq!(m.clusters().len(), 1);
        assert_eq!(m.class_of(t(500)).len(), 1000);
    }
}
