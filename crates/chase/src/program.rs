//! Per-rule compiled access programs.
//!
//! [`RuleProgram::compile`] turns a [`CompiledRule`] into a straight-line
//! join program against one dataset: a static variable order chosen once
//! from index cardinalities, and per-step lists of *probe options* and
//! *checks* addressed entirely by dictionary code and index slot. The
//! enumerator in [`crate::eval`] then runs the program with zero per-step
//! planning, no `Value` hashing or cloning, and no allocation on the hot
//! path.
//!
//! Compilation pre-builds every index the rule can touch (interning values
//! into the [`IndexSet`]'s shared [`ValueDict`]); afterwards evaluation
//! needs only `&IndexSet`. A program is valid until
//! [`IndexSet::clear`] — the dataset changing invalidates every slot and
//! code it holds.

use crate::plan::CompiledRule;
use dcer_mrl::TupleVar;
use dcer_relation::{Dataset, IndexSet, RelId, ValueDict};

/// A constant filter compiled to a dictionary code: rows of the step's
/// variable must carry `code` in the column indexed by `slot`. Doubles as a
/// probe option (the code's postings list enumerates exactly the matching
/// rows).
#[derive(Debug, Clone, Copy)]
pub struct ConstProbe {
    /// Index slot over the variable's `(relation, attribute)`.
    pub slot: u32,
    /// Interned code of the constant.
    pub code: u32,
}

/// A hash-join probe option: once `src_var` is bound, its join-key code
/// (read from `src_slot`'s code column in O(1)) selects a postings range in
/// `slot`.
#[derive(Debug, Clone, Copy)]
pub struct EdgeProbe {
    /// Index slot on this step's side of the equality edge.
    pub slot: u32,
    /// The other endpoint's tuple variable.
    pub src_var: u16,
    /// Index slot on the other endpoint's side (code column source).
    pub src_slot: u32,
}

/// A residual equality check at a step: if `other_var` is bound, this
/// step's row must carry the same (non-null) code as `other_var`'s row,
/// comparing the `slot` and `other_slot` code columns.
#[derive(Debug, Clone, Copy)]
pub struct EqCheck {
    /// Code column of this step's side.
    pub slot: u32,
    /// The other endpoint's tuple variable.
    pub other_var: u16,
    /// Code column of the other endpoint's side.
    pub other_slot: u32,
}

/// One equality edge with both endpoints' slots resolved — used for the
/// seed prelude, where an edge may be fully bound before any step runs.
#[derive(Debug, Clone, Copy)]
pub struct EqPair {
    /// Left tuple variable.
    pub left_var: u16,
    /// Left side's index slot.
    pub left_slot: u32,
    /// Right tuple variable.
    pub right_var: u16,
    /// Right side's index slot.
    pub right_slot: u32,
}

/// One step of the program: bind `var`, choosing at runtime the cheapest
/// *available* probe option (constant postings, or an edge probe whose
/// source is bound — seeds can make more edges available than the static
/// order assumed), falling back to a lazy scan of `rel`; then run the
/// step's checks against every candidate.
#[derive(Debug, Clone)]
pub struct Step {
    /// The tuple variable this step binds.
    pub var: u16,
    /// The variable's relation (scan fallback domain).
    pub rel: RelId,
    /// Compiled constant filters (checked every candidate; also probe
    /// options).
    pub consts: Vec<ConstProbe>,
    /// Edge probe options (usable when their source variable is bound).
    pub edges: Vec<EdgeProbe>,
    /// Equality checks incident to `var` (run when the other endpoint is
    /// bound; each edge thus fires exactly once, at its later-bound end).
    pub eq_checks: Vec<EqCheck>,
    /// Indices into [`CompiledRule::rec_preds`] incident to `var` (same
    /// later-bound-end discipline).
    pub rec_checks: Vec<u16>,
}

/// A [`CompiledRule`] lowered to a static join order plus per-step access
/// and check lists, valid for one dataset/index generation.
#[derive(Debug, Clone)]
pub struct RuleProgram {
    /// Steps in execution order (seeded variables are skipped at runtime).
    pub steps: Vec<Step>,
    /// Step index of each tuple variable.
    step_of_var: Vec<u32>,
    /// All equality edges with resolved slots (seed-prelude checks).
    pub eq_pairs: Vec<EqPair>,
    /// `true` when some constant filter's value is absent from the
    /// dictionary: no indexed row carries it, so the rule has no valuations
    /// in this dataset (seeded or not).
    pub dead: bool,
    /// Number of tuple variables.
    pub num_vars: usize,
}

impl RuleProgram {
    /// Compile `plan` against `dataset`, building (and interning into) any
    /// missing indexes in `indexes`.
    ///
    /// The join order is greedy over static cardinalities: constant
    /// postings length beats an edge probe's expected bucket size beats a
    /// full scan; among probes, smaller wins. The order is chosen once here
    /// — never re-scored during enumeration.
    pub fn compile(plan: &CompiledRule, dataset: &Dataset, indexes: &mut IndexSet) -> RuleProgram {
        let n = plan.num_vars();
        let mut dead = false;

        // Resolve every index the rule can touch up front; evaluation then
        // runs against `&IndexSet`.
        let mut consts: Vec<Vec<ConstProbe>> = vec![Vec::new(); n];
        for (v, filters) in plan.const_filters.iter().enumerate() {
            for (attr, value) in filters {
                let slot = indexes.slot_of(dataset, plan.atoms[v], *attr);
                let code = match indexes.code_of(value) {
                    Some(c) => c,
                    None => {
                        dead = true;
                        ValueDict::NULL
                    }
                };
                consts[v].push(ConstProbe { slot, code });
            }
        }
        let mut eq_pairs = Vec::with_capacity(plan.eq_edges.len());
        for e in &plan.eq_edges {
            let lv = e.left.0 .0;
            let rv = e.right.0 .0;
            eq_pairs.push(EqPair {
                left_var: lv,
                left_slot: indexes.slot_of(dataset, plan.atoms[lv as usize], e.left.1),
                right_var: rv,
                right_slot: indexes.slot_of(dataset, plan.atoms[rv as usize], e.right.1),
            });
        }

        // Greedy static order. Cost is (kind, size): kind 0 = any probe
        // (constant postings use their exact length, edge probes their
        // expected bucket size), kind 1 = scan.
        let mut ordered = vec![false; n];
        let mut order = Vec::with_capacity(n);
        for _ in 0..n {
            let mut best: Option<(usize, (u8, u64))> = None;
            for v in 0..n {
                if ordered[v] {
                    continue;
                }
                let mut cost = (1u8, dataset.relation(plan.atoms[v]).len() as u64);
                for c in &consts[v] {
                    let (s, e) = indexes.at(c.slot).bucket_range(c.code);
                    cost = cost.min((0, (e - s) as u64));
                }
                for p in &eq_pairs {
                    let probe_slot = if p.left_var as usize == v && ordered[p.right_var as usize] {
                        Some(p.left_slot)
                    } else if p.right_var as usize == v && ordered[p.left_var as usize] {
                        Some(p.right_slot)
                    } else {
                        None
                    };
                    if let Some(slot) = probe_slot {
                        cost = cost.min((0, indexes.at(slot).avg_bucket() as u64));
                    }
                }
                if best.is_none_or(|(_, c)| cost < c) {
                    best = Some((v, cost));
                }
            }
            let (v, _) = best.expect("an unordered variable remains");
            ordered[v] = true;
            order.push(v);
        }

        // Lower each step's probe options and residual checks.
        let mut step_of_var = vec![0u32; n];
        let mut steps = Vec::with_capacity(n);
        for (pos, &v) in order.iter().enumerate() {
            step_of_var[v] = pos as u32;
            let mut edges = Vec::new();
            let mut eq_checks = Vec::new();
            for p in &eq_pairs {
                if p.left_var as usize == v {
                    eq_checks.push(EqCheck {
                        slot: p.left_slot,
                        other_var: p.right_var,
                        other_slot: p.right_slot,
                    });
                    if p.right_var as usize != v {
                        edges.push(EdgeProbe {
                            slot: p.left_slot,
                            src_var: p.right_var,
                            src_slot: p.right_slot,
                        });
                    }
                } else if p.right_var as usize == v {
                    eq_checks.push(EqCheck {
                        slot: p.right_slot,
                        other_var: p.left_var,
                        other_slot: p.left_slot,
                    });
                    edges.push(EdgeProbe {
                        slot: p.right_slot,
                        src_var: p.left_var,
                        src_slot: p.left_slot,
                    });
                }
            }
            let rec_checks = plan
                .rec_preds
                .iter()
                .enumerate()
                .filter(|(_, p)| {
                    let (l, r) = p.vars();
                    l.0 as usize == v || r.0 as usize == v
                })
                .map(|(i, _)| i as u16)
                .collect();
            steps.push(Step {
                var: v as u16,
                rel: plan.atoms[v],
                consts: std::mem::take(&mut consts[v]),
                edges,
                eq_checks,
                rec_checks,
            });
        }

        RuleProgram { steps, step_of_var, eq_pairs, dead, num_vars: n }
    }

    /// Step index binding `var`.
    pub fn step_of(&self, var: TupleVar) -> usize {
        self.step_of_var[var.0 as usize] as usize
    }

    /// Re-sort every step's recursive checks by `rank` (ascending — run
    /// the cheapest-and-most-selective predicates first, so their prunes
    /// short-circuit the expensive ones). Ties keep plan order, making the
    /// result deterministic for any rank function; the engine feeds
    /// observed selectivity × model cost and refreshes once per `Deduce`
    /// round, so scalar and batched evaluation of the same program see
    /// identical predicate streams.
    pub fn reorder_rec_checks(&mut self, rank: impl Fn(u16) -> f64) {
        for step in &mut self.steps {
            if step.rec_checks.len() > 1 {
                step.rec_checks.sort_by(|&a, &b| {
                    rank(a)
                        .partial_cmp(&rank(b))
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.cmp(&b))
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facts::MlSigTable;
    use dcer_relation::{Catalog, RelationSchema, Value, ValueType};
    use std::sync::Arc;

    fn setup() -> (Dataset, Vec<CompiledRule>) {
        let cat = Arc::new(
            Catalog::from_schemas(vec![
                RelationSchema::of("R", &[("k", ValueType::Str), ("v", ValueType::Str)]),
                RelationSchema::of("S", &[("k", ValueType::Str), ("w", ValueType::Str)]),
            ])
            .unwrap(),
        );
        let mut d = Dataset::new(cat);
        d.insert(0, vec!["a".into(), "r0".into()]).unwrap();
        d.insert(0, vec!["b".into(), "r1".into()]).unwrap();
        d.insert(1, vec!["a".into(), "s0".into()]).unwrap();
        d.insert(1, vec![Value::Null, "s1".into()]).unwrap();
        let rules = dcer_mrl::parse_rules(
            d.catalog(),
            r#"match j: R(t), S(s), t.k = s.k -> dummy(t.k, s.k);
               match c: R(t), S(s), t.k = s.k, t.v = "zzz" -> dummy(t.k, s.k);
               match f: R(t), S(s), t.k = s.k, t.v = "r1" -> dummy(t.k, s.k)"#,
        )
        .unwrap();
        let sigs = MlSigTable::build(&rules);
        (d, CompiledRule::compile_all(&rules, &sigs))
    }

    #[test]
    fn compile_orders_every_variable_once() {
        let (d, plans) = setup();
        let mut idx = IndexSet::new();
        let prog = RuleProgram::compile(&plans[0], &d, &mut idx);
        assert_eq!(prog.steps.len(), 2);
        assert!(!prog.dead);
        let mut vars: Vec<u16> = prog.steps.iter().map(|s| s.var).collect();
        vars.sort_unstable();
        assert_eq!(vars, vec![0, 1]);
        assert_eq!(prog.steps[prog.step_of(TupleVar(0))].var, 0);
        // The equality edge is a probe option on both endpoints' steps and
        // a check on both (it fires at the later-bound end).
        assert!(prog.steps.iter().all(|s| s.edges.len() == 1 && s.eq_checks.len() == 1));
    }

    #[test]
    fn absent_constant_marks_program_dead() {
        let (d, plans) = setup();
        let mut idx = IndexSet::new();
        assert!(RuleProgram::compile(&plans[1], &d, &mut idx).dead, "\"zzz\" appears nowhere");
        assert!(!RuleProgram::compile(&plans[2], &d, &mut idx).dead, "\"r1\" is a live constant");
    }

    #[test]
    fn reorder_rec_checks_sorts_by_rank_with_stable_ties() {
        let (d, _) = setup();
        let rules = dcer_mrl::parse_rules(
            d.catalog(),
            "match j: R(t), S(s), m(t.k, s.k), n(t.v, s.w), m(t.v, s.w) -> dummy(t.k, s.k)",
        )
        .unwrap();
        let sigs = MlSigTable::build(&rules);
        let plan = CompiledRule::compile(&rules, &sigs, 0);
        let mut idx = IndexSet::new();
        let mut prog = RuleProgram::compile(&plan, &d, &mut idx);
        let step = prog.steps.iter().position(|s| s.rec_checks.len() == 3).unwrap();
        assert_eq!(prog.steps[step].rec_checks, vec![0, 1, 2], "compile order is plan order");
        // Rank pred 2 cheapest, 0 and 1 tied: ties keep plan order.
        prog.reorder_rec_checks(|pi| if pi == 2 { 1.0 } else { f64::INFINITY });
        assert_eq!(prog.steps[step].rec_checks, vec![2, 0, 1]);
        // The result is a pure function of the rank, not of the current
        // order: a constant rank restores canonical plan order.
        prog.reorder_rec_checks(|_| 1.0);
        assert_eq!(prog.steps[step].rec_checks, vec![0, 1, 2]);
    }

    #[test]
    fn constant_filter_leads_the_join_order() {
        let (d, plans) = setup();
        let mut idx = IndexSet::new();
        let prog = RuleProgram::compile(&plans[2], &d, &mut idx);
        // t.v = "r1" has a 1-row postings list; the scan-only alternative
        // for s is costlier, so t must come first.
        assert_eq!(prog.steps[0].var, 0);
        assert_eq!(prog.steps[0].consts.len(), 1);
    }
}
