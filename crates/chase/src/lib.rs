//! The chase-based fixpoint engine for deep and collective entity
//! resolution (paper, Sections III and V-A).
//!
//! Deep and collective ER is modeled as a chase with a set `Σ` of MRLs: the
//! match set `Γ` starts reflexive, and applying a rule whose precondition
//! holds under a valuation adds either a match `(t.id, s.id)` or a
//! *validated ML prediction* to `Γ`, until a fixpoint. The chase is
//! Church–Rosser (Corollary 1): any rule order converges to the same `Γ`.
//!
//! Two implementations are provided:
//!
//! - [`naive::naive_chase`] — the textbook fixpoint (re-enumerates all
//!   valuations every round); the correctness oracle for tests.
//! - [`ChaseEngine`] — the paper's `Match` (Fig. 3): one full `Deduce`
//!   round building inverted indices and a bounded dependency store `H`,
//!   then update-driven `IncDeduce` rounds that either *fire* cached
//!   dependencies or re-join only the valuations touched by new matches.
//!
//! The engine doubles as the per-worker algorithm of the parallel `DMatch`:
//! `A` is [`ChaseEngine::deduce`] and `A_Δ` is [`ChaseEngine::incdeduce`],
//! both speaking [`DeltaBatch`] — the immutable, sorted, `Arc`-backed unit
//! of fact exchange that the BSP runtime routes between workers without
//! deep-copying facts.

pub mod batch;
pub mod deps;
pub mod engine;
pub mod eval;
pub mod facts;
pub mod greedy;
pub mod naive;
pub mod plan;
pub mod program;
pub mod soft;
pub mod support;
pub mod union_find;

pub use batch::{BatchStats, DeltaBatch};
pub use engine::{run_match, ChaseConfig, ChaseEngine, ChaseOutcome, ChaseStats, UpdateDelta};
pub use eval::{
    enumerate_valuations, enumerate_with_program, enumerate_with_program_batched, EvalScratch,
    ValuationSink,
};
pub use facts::{ChaseState, Fact, MlOracle, MlSigTable};
pub use greedy::enumerate_valuations_greedy;
pub use naive::naive_chase;
pub use plan::{CompiledHead, CompiledRule, RecPred};
pub use program::RuleProgram;
pub use deps::Pending;
pub use soft::{soft_chase, SoftFact, SoftOutcome};
pub use support::{Provenance, SupportLog};
pub use union_find::MatchSet;
