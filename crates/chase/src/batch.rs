//! `DeltaBatch`: the zero-copy unit of fact exchange.
//!
//! Every stage of the execution stack — `Deduce` output, BSP routing,
//! `IncDeduce` input — moves facts as immutable, sorted, deduplicated
//! batches backed by an `Arc<[Fact]>`. Routing a batch to `k` recipients
//! is `k` reference-count bumps; no `Fact` is ever deep-copied on the
//! exchange path. Sorting buys `O(log n)` membership tests and linear-time
//! merges, and the exact wire size is computed once at construction so
//! the BSP cost model can account for bytes in `O(1)`.

use crate::facts::Fact;
use dcer_relation::Tid;
use serde::Serialize;
use std::sync::Arc;

/// An immutable, canonically ordered, duplicate-free batch of facts.
///
/// Cloning is an `Arc` bump. Two batches constructed from the same multiset
/// of facts are bit-identical regardless of insertion order, which makes
/// batch equality usable as a convergence check.
#[derive(Debug, Clone)]
pub struct DeltaBatch {
    facts: Arc<[Fact]>,
    /// Exact serialized size, cached at construction.
    wire_bytes: usize,
}

impl DeltaBatch {
    /// Canonicalize `facts`: sort, drop duplicates, freeze.
    pub fn new(mut facts: Vec<Fact>) -> DeltaBatch {
        facts.sort_unstable();
        facts.dedup();
        DeltaBatch::from_canonical(facts.into())
    }

    /// The empty batch (no allocation beyond the shared empty slice).
    pub fn empty() -> DeltaBatch {
        DeltaBatch { facts: Arc::from([] as [Fact; 0]), wire_bytes: 0 }
    }

    /// Wrap an already sorted, deduplicated slice without copying.
    ///
    /// Callers (merge, canonical constructors) must uphold the invariant;
    /// it is checked in debug builds.
    fn from_canonical(facts: Arc<[Fact]>) -> DeltaBatch {
        debug_assert!(facts.windows(2).all(|w| w[0] < w[1]), "batch must be sorted + deduped");
        let wire_bytes = facts.iter().map(Fact::size_bytes).sum();
        DeltaBatch { facts, wire_bytes }
    }

    /// Number of distinct facts.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// True when the batch carries no facts.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// `O(log n)` membership test over the canonical order.
    pub fn contains(&self, fact: &Fact) -> bool {
        self.facts.binary_search(fact).is_ok()
    }

    /// The facts in canonical order.
    pub fn as_slice(&self) -> &[Fact] {
        &self.facts
    }

    /// Iterate the facts in canonical order.
    pub fn iter(&self) -> std::slice::Iter<'_, Fact> {
        self.facts.iter()
    }

    /// Copy out into a `Vec` (test/bridge convenience; the exchange path
    /// never needs this).
    pub fn to_vec(&self) -> Vec<Fact> {
        self.facts.to_vec()
    }

    /// Exact wire size in bytes (`O(1)`, cached at construction).
    pub fn size_bytes(&self) -> usize {
        self.wire_bytes
    }

    /// Union of two batches as a linear-time sorted merge.
    ///
    /// When either side is empty the other is shared, not copied, so
    /// folding an inbox of batches with `merge` degenerates to an `Arc`
    /// bump in the common single-sender case.
    pub fn merge(&self, other: &DeltaBatch) -> DeltaBatch {
        if self.is_empty() {
            return other.clone();
        }
        if other.is_empty() {
            return self.clone();
        }
        let (a, b) = (&self.facts, &other.facts);
        let mut out = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => {
                    out.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        DeltaBatch::from_canonical(out.into())
    }

    /// Union of many batches, counting cross-batch duplicates into `stats`.
    pub fn merge_all<'a, I>(batches: I, stats: &mut BatchStats) -> DeltaBatch
    where
        I: IntoIterator<Item = &'a DeltaBatch>,
    {
        let mut acc = DeltaBatch::empty();
        for b in batches {
            let before = acc.len() + b.len();
            acc = acc.merge(b);
            stats.merges += 1;
            stats.merge_dups += (before - acc.len()) as u64;
        }
        acc
    }
}

impl Default for DeltaBatch {
    fn default() -> DeltaBatch {
        DeltaBatch::empty()
    }
}

impl PartialEq for DeltaBatch {
    fn eq(&self, other: &DeltaBatch) -> bool {
        self.facts == other.facts
    }
}

impl Eq for DeltaBatch {}

impl From<Vec<Fact>> for DeltaBatch {
    fn from(facts: Vec<Fact>) -> DeltaBatch {
        DeltaBatch::new(facts)
    }
}

impl FromIterator<Fact> for DeltaBatch {
    fn from_iter<I: IntoIterator<Item = Fact>>(iter: I) -> DeltaBatch {
        DeltaBatch::new(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a DeltaBatch {
    type Item = &'a Fact;
    type IntoIter = std::slice::Iter<'a, Fact>;
    fn into_iter(self) -> Self::IntoIter {
        self.facts.iter()
    }
}

/// Batches ride the BSP exchange directly: `Clone` is an `Arc` bump, the
/// cost model reads the cached wire size, and per-fact accounting comes
/// from the batch length.
impl dcer_bsp::Message for DeltaBatch {
    fn size_bytes(&self) -> usize {
        self.wire_bytes
    }

    fn unit_count(&self) -> usize {
        self.len()
    }

    /// On-disk checkpoint format: per fact a tag byte (`0` = Id, `1` = Ml),
    /// for Ml the `u16` signature, then both `Tid`s as `u16` rel + `u32`
    /// row, all little-endian.
    fn encode(&self) -> Option<Vec<u8>> {
        fn push_tid(out: &mut Vec<u8>, t: Tid) {
            out.extend_from_slice(&t.rel.to_le_bytes());
            out.extend_from_slice(&t.row.to_le_bytes());
        }
        let mut out = Vec::with_capacity(self.facts.len() * (1 + 2 + 2 * 6));
        for f in self.facts.iter() {
            match *f {
                Fact::Id(a, b) => {
                    out.push(0);
                    push_tid(&mut out, a);
                    push_tid(&mut out, b);
                }
                Fact::Ml(sig, a, b) => {
                    out.push(1);
                    out.extend_from_slice(&sig.to_le_bytes());
                    push_tid(&mut out, a);
                    push_tid(&mut out, b);
                }
            }
        }
        Some(out)
    }

    fn decode(bytes: &[u8]) -> Option<DeltaBatch> {
        fn take<const N: usize>(rest: &mut &[u8]) -> Option<[u8; N]> {
            let (head, tail) = rest.split_first_chunk::<N>()?;
            *rest = tail;
            Some(*head)
        }
        fn take_tid(rest: &mut &[u8]) -> Option<Tid> {
            let rel = u16::from_le_bytes(take::<2>(rest)?);
            let row = u32::from_le_bytes(take::<4>(rest)?);
            Some(Tid { rel, row })
        }
        let mut rest = bytes;
        let mut facts = Vec::new();
        while let Some([tag]) = take::<1>(&mut rest) {
            let fact = match tag {
                0 => Fact::Id(take_tid(&mut rest)?, take_tid(&mut rest)?),
                1 => {
                    let sig = u16::from_le_bytes(take::<2>(&mut rest)?);
                    Fact::Ml(sig, take_tid(&mut rest)?, take_tid(&mut rest)?)
                }
                _ => return None,
            };
            facts.push(fact);
        }
        // `new` re-canonicalizes, so a decoded batch upholds the
        // sorted+deduped invariant even on hand-crafted input.
        Some(DeltaBatch::new(facts))
    }
}

/// Counters for batch construction and merging on the exchange path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct BatchStats {
    /// Batches built from raw deduction output.
    pub built: u64,
    /// Facts fed into batch construction (before dedup).
    pub facts_in: u64,
    /// Distinct facts that survived canonicalization.
    pub facts_out: u64,
    /// Pairwise merges performed while folding inboxes.
    pub merges: u64,
    /// Cross-batch duplicates collapsed by merging.
    pub merge_dups: u64,
}

impl BatchStats {
    /// Record one canonicalization: `raw` facts in, `batch.len()` out.
    pub fn record_build(&mut self, raw: usize, batch: &DeltaBatch) {
        self.built += 1;
        self.facts_in += raw as u64;
        self.facts_out += batch.len() as u64;
    }

    /// Duplicates removed at construction time (within-batch).
    pub fn dedup_removed(&self) -> u64 {
        self.facts_in - self.facts_out
    }

    /// Pointwise sum (aggregating worker stats).
    pub fn add(&mut self, other: &BatchStats) {
        self.built += other.built;
        self.facts_in += other.facts_in;
        self.facts_out += other.facts_out;
        self.merges += other.merges;
        self.merge_dups += other.merge_dups;
    }

    /// Publish these counters into the global [`dcer_obs`] registry under
    /// `batch.*` (no-op unless a recorder is installed).
    pub fn publish(&self) {
        if !dcer_obs::enabled() {
            return;
        }
        dcer_obs::counter_add("batch.built", self.built);
        dcer_obs::counter_add("batch.facts_in", self.facts_in);
        dcer_obs::counter_add("batch.facts_out", self.facts_out);
        dcer_obs::counter_add("batch.merges", self.merges);
        dcer_obs::counter_add("batch.merge_dups", self.merge_dups);
        dcer_obs::counter_add("batch.dedup_removed", self.dedup_removed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcer_bsp::Message;
    use dcer_relation::Tid;

    fn t(rel: u16, row: u32) -> Tid {
        Tid { rel, row }
    }

    #[test]
    fn construction_sorts_and_dedups() {
        let b = DeltaBatch::new(vec![
            Fact::id(t(0, 5), t(0, 1)),
            Fact::id(t(0, 1), t(0, 5)), // same fact, canonicalized orientation
            Fact::ml(3, t(1, 2), t(1, 9), true),
            Fact::id(t(0, 0), t(0, 2)),
        ]);
        assert_eq!(b.len(), 3);
        assert!(b.as_slice().windows(2).all(|w| w[0] < w[1]));
        assert!(b.contains(&Fact::id(t(0, 5), t(0, 1))));
        assert!(!b.contains(&Fact::id(t(0, 5), t(0, 2))));
    }

    #[test]
    fn equality_is_insertion_order_independent() {
        let a = DeltaBatch::new(vec![Fact::id(t(0, 1), t(0, 2)), Fact::id(t(0, 3), t(0, 4))]);
        let b = DeltaBatch::new(vec![Fact::id(t(0, 3), t(0, 4)), Fact::id(t(0, 1), t(0, 2))]);
        assert_eq!(a, b);
    }

    #[test]
    fn merge_unions_without_duplicates() {
        let a = DeltaBatch::new(vec![Fact::id(t(0, 1), t(0, 2)), Fact::id(t(0, 5), t(0, 6))]);
        let b = DeltaBatch::new(vec![Fact::id(t(0, 1), t(0, 2)), Fact::id(t(0, 7), t(0, 8))]);
        let m = a.merge(&b);
        assert_eq!(m.len(), 3);
        assert_eq!(m, b.merge(&a));
        assert_eq!(m.size_bytes(), m.iter().map(Fact::size_bytes).sum::<usize>());
    }

    #[test]
    fn merge_with_empty_shares_storage() {
        let a = DeltaBatch::new(vec![Fact::id(t(0, 1), t(0, 2))]);
        let m = a.merge(&DeltaBatch::empty());
        assert!(Arc::ptr_eq(&a.facts, &m.facts), "empty merge must not copy");
        let m2 = DeltaBatch::empty().merge(&a);
        assert!(Arc::ptr_eq(&a.facts, &m2.facts));
    }

    #[test]
    fn clone_is_shallow() {
        let a = DeltaBatch::new(vec![Fact::id(t(0, 1), t(0, 2))]);
        let b = a.clone();
        assert!(Arc::ptr_eq(&a.facts, &b.facts));
    }

    #[test]
    fn message_impl_reports_cached_sizes() {
        let a =
            DeltaBatch::new(vec![Fact::id(t(0, 1), t(0, 2)), Fact::ml(1, t(1, 1), t(1, 2), true)]);
        assert_eq!(Message::size_bytes(&a), Fact::ID_WIRE_BYTES + Fact::ML_WIRE_BYTES);
        assert_eq!(a.unit_count(), 2);
    }

    #[test]
    fn merge_all_counts_cross_batch_duplicates() {
        let a = DeltaBatch::new(vec![Fact::id(t(0, 1), t(0, 2))]);
        let b = DeltaBatch::new(vec![Fact::id(t(0, 1), t(0, 2)), Fact::id(t(0, 3), t(0, 4))]);
        let mut stats = BatchStats::default();
        let m = DeltaBatch::merge_all([&a, &b], &mut stats);
        assert_eq!(m.len(), 2);
        assert_eq!(stats.merges, 2);
        assert_eq!(stats.merge_dups, 1);
    }
}
