//! The textbook chase: re-enumerate every valuation of every rule each
//! round until no new fact is deduced. Exponentially slower than
//! [`crate::ChaseEngine`] but obviously correct — the oracle against which
//! the optimized and parallel engines are verified (Church–Rosser means all
//! of them must converge to the same `Γ`).

use crate::facts::{ChaseState, Fact, MlOracle, MlSigTable};
use crate::plan::{CompiledHead, CompiledRule, RecPred};
use dcer_ml::MlRegistry;
use dcer_mrl::RuleSet;
use dcer_relation::{Dataset, Tid};

/// Run the chase naively to fixpoint; returns the final state.
///
/// Intended for correctness tests at small scale: each round enumerates the
/// full cross product of every rule's atoms.
pub fn naive_chase(
    dataset: &Dataset,
    rules: &RuleSet,
    registry: &MlRegistry,
) -> Result<ChaseState, String> {
    let sigs = MlSigTable::build(rules);
    let plans = CompiledRule::compile_all(rules, &sigs);
    let mut oracle = MlOracle::new(rules, registry)?;
    let mut state = ChaseState::new();

    loop {
        let mut changed = false;
        for plan in &plans {
            let mut rows = vec![0u32; plan.num_vars()];
            brute(dataset, plan, &sigs, &mut oracle, &mut state, &mut rows, 0, &mut changed);
        }
        if !changed {
            return Ok(state);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn brute(
    dataset: &Dataset,
    plan: &CompiledRule,
    sigs: &MlSigTable,
    oracle: &mut MlOracle,
    state: &mut ChaseState,
    rows: &mut Vec<u32>,
    depth: usize,
    changed: &mut bool,
) {
    if depth == plan.num_vars() {
        if holds(dataset, plan, sigs, oracle, state, rows) {
            let tid = |v: dcer_mrl::TupleVar| -> Tid {
                dataset.relation(plan.atoms[v.0 as usize]).tuples()[rows[v.0 as usize] as usize].tid
            };
            let fact = match plan.head {
                CompiledHead::Id(l, r) => {
                    let (a, b) = (tid(l), tid(r));
                    if a == b {
                        return;
                    }
                    Fact::id(a, b)
                }
                CompiledHead::Ml { sig, left, right, symmetric } => {
                    let (a, b) = (tid(left), tid(right));
                    if a == b {
                        return; // self-prediction carries no information
                    }
                    Fact::ml(sig, a, b, symmetric)
                }
            };
            if state.apply(fact).is_some() {
                *changed = true;
            }
        }
        return;
    }
    let relation = dataset.relation(plan.atoms[depth]);
    for r in 0..relation.len() as u32 {
        if !relation.is_live(r) {
            continue;
        }
        rows[depth] = r;
        brute(dataset, plan, sigs, oracle, state, rows, depth + 1, changed);
    }
}

fn holds(
    dataset: &Dataset,
    plan: &CompiledRule,
    sigs: &MlSigTable,
    oracle: &mut MlOracle,
    state: &mut ChaseState,
    rows: &[u32],
) -> bool {
    let tuple = |v: dcer_mrl::TupleVar| {
        &dataset.relation(plan.atoms[v.0 as usize]).tuples()[rows[v.0 as usize] as usize]
    };
    for (i, filters) in plan.const_filters.iter().enumerate() {
        let t = &dataset.relation(plan.atoms[i]).tuples()[rows[i] as usize];
        if !filters.iter().all(|(a, c)| t.get(*a).sql_eq(c)) {
            return false;
        }
    }
    for e in &plan.eq_edges {
        if !tuple(e.left.0).get(e.left.1).sql_eq(tuple(e.right.0).get(e.right.1)) {
            return false;
        }
    }
    for p in &plan.rec_preds {
        match *p {
            RecPred::Id { left, right } => {
                let (a, b) = (tuple(left).tid, tuple(right).tid);
                if !state.holds_id(a, b) {
                    return false;
                }
            }
            RecPred::Ml { sig, left, right, symmetric, .. } => {
                let (lt, rt) = (tuple(left).clone(), tuple(right).clone());
                if !state.holds_ml(sig, lt.tid, rt.tid, symmetric)
                    && !oracle.predict(sigs, sig, &lt, &rt, 0)
                {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcer_ml::EqualTextClassifier;
    use dcer_relation::{Catalog, RelationSchema, ValueType};
    use std::sync::Arc;

    fn catalog() -> Arc<Catalog> {
        Arc::new(
            Catalog::from_schemas(vec![RelationSchema::of(
                "R",
                &[("k", ValueType::Str), ("x", ValueType::Str)],
            )])
            .unwrap(),
        )
    }

    #[test]
    fn simple_md_fires() {
        let cat = catalog();
        let mut d = Dataset::new(cat.clone());
        let a = d.insert(0, vec!["same".into(), "1".into()]).unwrap();
        let b = d.insert(0, vec!["same".into(), "2".into()]).unwrap();
        let c = d.insert(0, vec!["diff".into(), "3".into()]).unwrap();
        let rules =
            dcer_mrl::parse_rules(&cat, "match r: R(t), R(s), t.k = s.k -> t.id = s.id").unwrap();
        let mut st = naive_chase(&d, &rules, &MlRegistry::new()).unwrap();
        assert!(st.holds_id(a, b));
        assert!(!st.holds_id(a, c));
    }

    #[test]
    fn recursion_chains_through_id_predicates() {
        // r1 matches via k; r2 propagates: if t~s (ids) and t.x = u.x then
        // s~u... encoded as: R(t),R(s),R(u), t.id = s.id, s.x = u.x -> t.id = u.id
        let cat = catalog();
        let mut d = Dataset::new(cat.clone());
        let a = d.insert(0, vec!["k1".into(), "p".into()]).unwrap();
        let b = d.insert(0, vec!["k1".into(), "q".into()]).unwrap();
        let c = d.insert(0, vec!["k2".into(), "q".into()]).unwrap();
        let rules = dcer_mrl::parse_rules(
            &cat,
            "match base: R(t), R(s), t.k = s.k -> t.id = s.id;
             match step: R(t), R(s), R(u), t.id = s.id, s.x = u.x -> t.id = u.id",
        )
        .unwrap();
        let mut st = naive_chase(&d, &rules, &MlRegistry::new()).unwrap();
        // base: a~b. step: t=a, s=b, u=c via b.x = c.x = "q" -> a~c.
        assert!(st.holds_id(a, b));
        assert!(st.holds_id(a, c));
        assert_eq!(st.matches.clusters().len(), 1);
    }

    #[test]
    fn ml_head_validates_and_feeds_body() {
        // r1 validates m(x) for tuples sharing k; r2 requires m(x) validated
        // OR classifier-true. With EqualTextClassifier on differing x values
        // only the validated path can fire r2.
        let cat = catalog();
        let mut d = Dataset::new(cat.clone());
        let a = d.insert(0, vec!["k".into(), "xa".into()]).unwrap();
        let b = d.insert(0, vec!["k".into(), "xb".into()]).unwrap();
        let rules = dcer_mrl::parse_rules(
            &cat,
            "match validate: R(t), R(s), t.k = s.k -> m(t.x, s.x);
             match use: R(t), R(s), m(t.x, s.x) -> t.id = s.id",
        )
        .unwrap();
        let mut reg = MlRegistry::new();
        reg.register("m", Arc::new(EqualTextClassifier));
        let mut st = naive_chase(&d, &rules, &reg).unwrap();
        assert!(st.holds_id(a, b), "match via validated prediction");
        assert!(!st.validated.is_empty());
    }
}
