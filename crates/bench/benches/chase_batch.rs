//! Batched-predicate benchmark: the full sequential `Match` with columnar
//! candidate batches versus the scalar per-candidate path, on an ML-heavy
//! workload where classifier cost dominates the chase.
//!
//! The shape is an equi-join `R(t), S(s), t.k = s.k` guarded by an n-gram
//! cosine predicate `sim(t.x, s.w)`: every R key matches a window of S
//! rows, so each batched window shares one (long, expensive-to-profile)
//! left text across hundreds of pairs. The batch kernel profiles each
//! distinct text once per window (`per_side_cache`), where the scalar
//! path rebuilds both profiles for every pair — that amortization is the
//! headline `batch_speedup` claim (floor: 2x, guarded in CI).
//!
//! Each measured iteration runs `run_match` from scratch (fresh engine,
//! fresh memo): a warm memo would absorb the classifier work and measure
//! nothing but cache probes. After measuring, results are written to
//! `BENCH_chase_batch.json` at the workspace root (or, with
//! `CHASE_BATCH_QUICK` set, a reduced run to
//! `results/BENCH_chase_batch_quick.json` for the CI smoke job).

use criterion::{black_box, Criterion};
use dcer_chase::{run_match, ChaseConfig};
use dcer_ml::{EqualTextClassifier, MlRegistry, NgramCosineClassifier};
use dcer_mrl::RuleSet;
use dcer_relation::{Catalog, Dataset, RelationSchema, ValueType};
use std::sync::Arc;

/// `rows_s` S tuples spread over `rows_r` R keys: each R row's long text
/// meets a window of `rows_s / rows_r` short S texts under the equi-join.
fn workload(rows_r: usize, rows_s: usize) -> (Dataset, RuleSet, MlRegistry) {
    let cat = Arc::new(
        Catalog::from_schemas(vec![
            RelationSchema::of("R", &[("k", ValueType::Str), ("x", ValueType::Str)]),
            RelationSchema::of("S", &[("k", ValueType::Str), ("w", ValueType::Str)]),
        ])
        .unwrap(),
    );
    let mut d = Dataset::new(cat);
    for i in 0..rows_r {
        // ~200-char distinct text: profiling it dominates the pair cost.
        let long: String =
            (0..20).map(|j| format!("token{:03}x{:02}", (i * 7 + j) % 997, j)).collect();
        d.insert(0, vec![format!("key{i}").into(), long.into()]).unwrap();
    }
    for i in 0..rows_s {
        d.insert(
            1,
            vec![format!("key{}", i % rows_r).into(), format!("w{:07}", i * 31 % 9_999_991).into()],
        )
        .unwrap();
    }
    let rules = dcer_mrl::parse_rules(
        d.catalog(),
        "match sim: R(t), S(s), t.k = s.k, sim(t.x, s.w) -> dummy(t.k, s.k)",
    )
    .unwrap();
    let mut reg = MlRegistry::new();
    reg.register("sim", Arc::new(NgramCosineClassifier::new(0.8)));
    reg.register("dummy", Arc::new(EqualTextClassifier));
    (d, rules, reg)
}

fn config(batch: Option<usize>) -> ChaseConfig {
    match batch {
        None => ChaseConfig { use_batching: false, ..Default::default() },
        Some(w) => ChaseConfig { use_batching: true, batch_size: w, ..Default::default() },
    }
}

fn main() {
    let quick = std::env::var_os("CHASE_BATCH_QUICK").is_some();
    let (rows_r, rows_s) = if quick { (100, 5_000) } else { (400, 100_000) };
    let samples = if quick { 5 } else { 10 };
    let mut c = Criterion::default().sample_size(samples);

    let (d, rules, reg) = workload(rows_r, rows_s);

    // Sanity before measuring: every path computes the same closure and
    // the same oracle counters (the equivalence suites pin this harder).
    let mut want = run_match(&d, &rules, &reg, &config(None)).unwrap();
    for batch in [64, 1024] {
        let mut got = run_match(&d, &rules, &reg, &config(Some(batch))).unwrap();
        assert_eq!(got.matches.clusters(), want.matches.clusters(), "batch {batch}: clusters");
        assert_eq!(got.stats, want.stats, "batch {batch}: stats");
    }
    let ml_calls = want.stats.ml_calls;
    assert!(ml_calls as usize >= rows_s, "workload must be classifier-bound");

    for (name, batch) in [("scalar", None), ("batch64", Some(64)), ("batch1024", Some(1024))] {
        let cfg = config(batch);
        c.bench_function(format!("ngram/{name}").as_str(), |b| {
            b.iter(|| black_box(run_match(&d, &rules, &reg, &cfg).unwrap().stats.ml_calls))
        });
    }

    c.report();
    write_report(&c, rows_r, rows_s, ml_calls, quick);
}

/// Record the acceptance number: `batch_speedup` = scalar / batch1024.
fn write_report(c: &Criterion, rows_r: usize, rows_s: usize, ml_calls: u64, quick: bool) {
    use serde_json::{Map, Value};

    let mean = |id: &str| {
        c.results()
            .iter()
            .find(|r| r.id == id)
            .map(|r| r.mean_ns)
            .unwrap_or_else(|| panic!("missing bench result {id}"))
    };

    let scalar = mean("ngram/scalar");
    let batch64 = mean("ngram/batch64");
    let batch1024 = mean("ngram/batch1024");
    let mut root = Map::new();
    root.insert("bench", Value::from("chase_batch"));
    root.insert("rows_r", Value::from(rows_r));
    root.insert("rows_s", Value::from(rows_s));
    root.insert("ml_calls", Value::from(ml_calls));
    root.insert("quick", Value::from(quick));
    root.insert("scalar_ns", Value::from(scalar));
    root.insert("batch64_ns", Value::from(batch64));
    root.insert("batch1024_ns", Value::from(batch1024));
    root.insert("batch64_speedup", Value::from(scalar / batch64));
    root.insert("batch_speedup", Value::from(scalar / batch1024));

    let path = if quick {
        let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results");
        std::fs::create_dir_all(dir).expect("create results dir");
        format!("{dir}/BENCH_chase_batch_quick.json")
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_chase_batch.json").to_string()
    };
    let body = serde_json::to_string_pretty(&Value::Object(root)).expect("render json");
    std::fs::write(&path, body + "\n").expect("write chase_batch report");
    eprintln!("wrote {path}");
}
