//! End-to-end pipeline benchmarks: HyPart partitioning (with/without MQO),
//! the sequential `Match`, the incremental `IncDeduce` path, and full
//! `DMatch` at several worker counts — the Criterion counterparts of the
//! paper's efficiency experiments.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dcer_chase::{ChaseConfig, ChaseEngine, Fact};
use dcer_core::DmatchConfig;
use dcer_datagen::tpch;
use dcer_hypart::{partition, HyPartConfig};
use dcer_mrl::parse_rules;
use dcer_relation::Tid;

fn tpch_setup() -> (dcer_relation::Dataset, dcer_mrl::RuleSet, dcer_ml::MlRegistry) {
    let (data, _) = tpch::generate(&tpch::TpchConfig { scale: 0.02, dup: 0.3, seed: 42 });
    let rules = parse_rules(&tpch::catalog(), tpch::rules_source()).unwrap();
    (data, rules, tpch::make_registry())
}

fn bench_partition(c: &mut Criterion) {
    let (data, rules, _) = tpch_setup();
    let mut g = c.benchmark_group("hypart");
    for &mqo in &[true, false] {
        g.bench_with_input(
            BenchmarkId::new("partition_n8", if mqo { "mqo" } else { "no_mqo" }),
            &mqo,
            |b, &mqo| {
                let mut cfg = HyPartConfig::new(8);
                cfg.use_mqo = mqo;
                b.iter(|| black_box(partition(&data, &rules, &cfg)))
            },
        );
    }
    g.finish();
}

fn bench_sequential_match(c: &mut Criterion) {
    let (data, rules, registry) = tpch_setup();
    let mut g = c.benchmark_group("match");
    g.sample_size(10);
    g.bench_function("run_match_tpch_sf002", |b| {
        b.iter(|| {
            black_box(
                dcer_chase::run_match(&data, &rules, &registry, &ChaseConfig::default()).unwrap(),
            )
        })
    });
    // The update-driven fallback path (no dependency cache).
    g.bench_function("run_match_no_dep_cache", |b| {
        let cfg = ChaseConfig { dep_capacity: 0, use_dep_cache: false, ..Default::default() };
        b.iter(|| black_box(dcer_chase::run_match(&data, &rules, &registry, &cfg).unwrap()))
    });
    g.finish();
}

fn bench_incremental(c: &mut Criterion) {
    let (data, rules, registry) = tpch_setup();
    // Pre-run the local fixpoint once; benchmark applying one external
    // match delta (the A_Δ path of DMatch).
    let nation_a = Tid::new(tpch::rel::NATION, 0);
    let nation_b = Tid::new(tpch::rel::NATION, 1);
    c.bench_function("incdeduce_single_delta", |b| {
        b.iter_batched(
            || {
                let mut engine =
                    ChaseEngine::new(data.clone(), &rules, &registry, &ChaseConfig::default())
                        .unwrap();
                engine.run_local_fixpoint();
                engine
            },
            |mut engine| black_box(engine.apply_delta(&[Fact::id(nation_a, nation_b)])),
            criterion::BatchSize::LargeInput,
        )
    });
}

fn bench_dmatch(c: &mut Criterion) {
    let (data, rules, registry) = tpch_setup();
    let mut g = c.benchmark_group("dmatch");
    g.sample_size(10);
    for &n in &[1usize, 4, 16] {
        g.bench_with_input(BenchmarkId::new("workers", n), &n, |b, &n| {
            b.iter(|| {
                black_box(
                    dcer_core::run_dmatch(&data, &rules, &registry, &DmatchConfig::new(n)).unwrap(),
                )
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = pipeline;
    config = Criterion::default().sample_size(10);
    targets = bench_partition, bench_sequential_match, bench_incremental, bench_dmatch
}
criterion_main!(pipeline);
