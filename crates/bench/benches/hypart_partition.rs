//! HyPart partitioning benchmark: the sharded parallel distribution scan
//! versus the sequential reference implementation.
//!
//! Three wall-clock measurements (sequential reference, the new code path
//! pinned to one thread, the new code path at 8 threads) plus simulated
//! 1- and 8-shard makespans from [`dcer_hypart::partition_timed`] in
//! [`dcer_hypart::ShardExecution::Simulated`] mode, where each shard is
//! timed uncontended and the makespan is what a machine with one core per
//! shard would see.
//!
//! The headline `speedup_8t` uses the threaded wall-clock ratio when the
//! host actually has ≥ 8 cores, and the simulated-makespan ratio otherwise
//! (recorded honestly in `speedup_mode`/`cores`); `seq_regression` is the
//! 1-thread new path over the reference — the refactor must not tax the
//! sequential case. Results go to `BENCH_hypart_partition.json` at the
//! workspace root (or, with `HYPART_PARTITION_QUICK` set, a reduced run to
//! `results/BENCH_hypart_partition_quick.json` for the CI smoke job).

use criterion::{black_box, Criterion};
use dcer_hypart::{partition, partition_reference, partition_timed, HyPartConfig, ShardExecution};
use dcer_mrl::{parse_rules, RuleSet};
use dcer_relation::{Catalog, Dataset, RelationSchema, ValueType};
use std::sync::Arc;

/// `rows` tuples per relation over a moderately repetitive key space, with
/// one mildly hot key (~3% of A) so the skew-refinement path stays honest
/// without dominating the measurement.
fn workload(rows: usize) -> (Dataset, RuleSet) {
    let cat = Arc::new(
        Catalog::from_schemas(vec![
            RelationSchema::of("A", &[("k", ValueType::Str), ("v", ValueType::Str)]),
            RelationSchema::of("B", &[("k", ValueType::Str), ("w", ValueType::Str)]),
        ])
        .unwrap(),
    );
    let mut d = Dataset::new(cat);
    let keys = (rows / 8).max(1);
    for i in 0..rows {
        let k = if i % 37 == 0 { "hot".to_string() } else { format!("k{}", i % keys) };
        d.insert(0, vec![k.into(), format!("v{}", i % 211).into()]).unwrap();
        d.insert(1, vec![format!("k{}", i % keys).into(), format!("w{}", i % 97).into()]).unwrap();
    }
    let rules = parse_rules(
        d.catalog(),
        "match md: A(t), A(s), t.k = s.k -> t.id = s.id;
         match coll: A(t), B(u), A(s), B(v), t.k = u.k, s.k = v.k, u.w = v.w -> t.id = s.id",
    )
    .unwrap();
    (d, rules)
}

fn config(workers: usize, threads: usize, execution: ShardExecution) -> HyPartConfig {
    let mut cfg = HyPartConfig::new(workers);
    cfg.threads = threads;
    cfg.execution = execution;
    cfg
}

fn main() {
    let quick = std::env::var_os("HYPART_PARTITION_QUICK").is_some();
    let rows = if quick { 4_000 } else { 25_000 };
    let samples = if quick { 10 } else { 15 };
    let workers = 8;

    let (d, rules) = workload(rows);

    // Parity guard before timing anything: the parallel path must be
    // bit-identical to the reference on the bench dataset.
    let oracle = partition_reference(&d, &rules, &HyPartConfig::new(workers));
    for threads in [1, 8] {
        let p = partition(&d, &rules, &config(workers, threads, ShardExecution::Threaded));
        assert_eq!(p.stats, oracle.stats, "parallel path diverged at {threads} threads");
    }

    let mut c = Criterion::default().sample_size(samples);
    c.bench_function("partition/seq_reference", |b| {
        b.iter(|| black_box(partition_reference(&d, &rules, &HyPartConfig::new(workers))))
    });
    c.bench_function("partition/par_1t", |b| {
        b.iter(|| black_box(partition(&d, &rules, &config(workers, 1, ShardExecution::Threaded))))
    });
    c.bench_function("partition/par_8t", |b| {
        b.iter(|| black_box(partition(&d, &rules, &config(workers, 8, ShardExecution::Threaded))))
    });
    c.report();

    // Simulated makespans: shards run back to back, each timed without
    // contention, so the ratio is core-count independent.
    let sim_makespan = |threads: usize| -> f64 {
        let runs = samples.min(10);
        let mut total = 0u64;
        for _ in 0..runs {
            let (_, t) =
                partition_timed(&d, &rules, &config(workers, threads, ShardExecution::Simulated));
            total += t.makespan_ns();
        }
        total as f64 / runs as f64
    };
    let sim_1t = sim_makespan(1);
    let sim_8t = sim_makespan(8);

    write_report(&c, rows, workers, sim_1t, sim_8t, quick);
}

fn write_report(c: &Criterion, rows: usize, workers: usize, sim_1t: f64, sim_8t: f64, quick: bool) {
    use serde_json::{Map, Value};

    let mean = |id: &str| {
        c.results()
            .iter()
            .find(|r| r.id == id)
            .map(|r| r.mean_ns)
            .unwrap_or_else(|| panic!("missing bench result {id}"))
    };
    let seq = mean("partition/seq_reference");
    let par_1t = mean("partition/par_1t");
    let par_8t = mean("partition/par_8t");

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let speedup_threaded = seq / par_8t;
    let speedup_simulated = sim_1t / sim_8t;
    // The threaded ratio is only meaningful with enough physical cores;
    // otherwise report the simulated-makespan ratio and say so.
    let (speedup_8t, mode) = if cores >= 8 {
        (speedup_threaded, "threaded_wall")
    } else {
        (speedup_simulated, "simulated_makespan")
    };

    let mut root = Map::new();
    root.insert("bench", Value::from("hypart_partition"));
    root.insert("rows_per_relation", Value::from(rows));
    root.insert("workers", Value::from(workers));
    root.insert("quick", Value::from(quick));
    root.insert("cores", Value::from(cores));
    root.insert("seq_reference_ns", Value::from(seq));
    root.insert("par_1t_ns", Value::from(par_1t));
    root.insert("par_8t_ns", Value::from(par_8t));
    root.insert("sim_makespan_1t_ns", Value::from(sim_1t));
    root.insert("sim_makespan_8t_ns", Value::from(sim_8t));
    root.insert("speedup_8t_threaded", Value::from(speedup_threaded));
    root.insert("speedup_8t_simulated", Value::from(speedup_simulated));
    root.insert("speedup_8t", Value::from(speedup_8t));
    root.insert("speedup_mode", Value::from(mode));
    root.insert("seq_regression", Value::from(par_1t / seq));

    let path = if quick {
        let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results");
        std::fs::create_dir_all(dir).expect("create results dir");
        format!("{dir}/BENCH_hypart_partition_quick.json")
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_hypart_partition.json").to_string()
    };
    let body = serde_json::to_string_pretty(&Value::Object(root)).expect("render json");
    std::fs::write(&path, body + "\n").expect("write hypart_partition report");
    eprintln!("wrote {path}");
}
