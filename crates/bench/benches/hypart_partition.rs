//! HyPart partitioning benchmark: the sharded parallel distribution scan
//! versus the sequential reference implementation.
//!
//! Three wall-clock measurements (sequential reference, the pooled code
//! path pinned to one lane, the pooled code path on a shared 8-lane
//! [`WorkPool`] — spawned once, reused across every iteration, as a
//! session would) plus simulated
//! 1- and 8-shard makespans from [`dcer_hypart::partition_timed`] in
//! [`dcer_hypart::ShardExecution::Simulated`] mode, where each shard is
//! timed uncontended and the makespan is what a machine with one core per
//! shard would see.
//!
//! The headline `speedup_8t` uses the threaded wall-clock ratio when the
//! host actually has ≥ 8 cores, and the simulated-makespan ratio otherwise
//! (recorded honestly in `speedup_mode`/`cores`); `seq_regression` is the
//! 1-thread new path over the reference — the refactor must not tax the
//! sequential case. Results go to `BENCH_hypart_partition.json` at the
//! workspace root (or, with `HYPART_PARTITION_QUICK` set, a reduced run to
//! `results/BENCH_hypart_partition_quick.json` for the CI smoke job).
//!
//! All measured variants run **interleaved, round-robin, medians reported**
//! rather than criterion-style back-to-back blocks: the ratios here compare
//! runs ~0.5 s apart instead of ~10 s apart, so slow host drift (thermal
//! throttling, shared-tenancy noise — observed at ±40% across minutes on
//! small cloud boxes) cancels out of `seq_regression` and the speedups
//! instead of masquerading as a code change.

use dcer_hypart::{partition, partition_reference, partition_timed, HyPartConfig, ShardExecution};
use dcer_mrl::{parse_rules, RuleSet};
use dcer_pool::WorkPool;
use dcer_relation::{Catalog, Dataset, RelationSchema, ValueType};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// `rows` tuples per relation over a moderately repetitive key space, with
/// one mildly hot key (~3% of A) so the skew-refinement path stays honest
/// without dominating the measurement.
fn workload(rows: usize) -> (Dataset, RuleSet) {
    let cat = Arc::new(
        Catalog::from_schemas(vec![
            RelationSchema::of("A", &[("k", ValueType::Str), ("v", ValueType::Str)]),
            RelationSchema::of("B", &[("k", ValueType::Str), ("w", ValueType::Str)]),
        ])
        .unwrap(),
    );
    let mut d = Dataset::new(cat);
    let keys = (rows / 8).max(1);
    for i in 0..rows {
        let k = if i % 37 == 0 { "hot".to_string() } else { format!("k{}", i % keys) };
        d.insert(0, vec![k.into(), format!("v{}", i % 211).into()]).unwrap();
        d.insert(1, vec![format!("k{}", i % keys).into(), format!("w{}", i % 97).into()]).unwrap();
    }
    let rules = parse_rules(
        d.catalog(),
        "match md: A(t), A(s), t.k = s.k -> t.id = s.id;
         match coll: A(t), B(u), A(s), B(v), t.k = u.k, s.k = v.k, u.w = v.w -> t.id = s.id",
    )
    .unwrap();
    (d, rules)
}

fn config(workers: usize, threads: usize, execution: ShardExecution) -> HyPartConfig {
    let mut cfg = HyPartConfig::new(workers);
    cfg.threads = threads;
    cfg.execution = execution;
    cfg
}

/// Like [`config`], but running on a caller-owned shared pool — the
/// steady-state session shape, where the lanes are spawned once and every
/// `partition` call reuses them instead of paying thread startup per run.
fn config_pooled(workers: usize, threads: usize, pool: &Arc<WorkPool>) -> HyPartConfig {
    let mut cfg = config(workers, threads, ShardExecution::Threaded);
    cfg.pool = Some(Arc::clone(pool));
    cfg
}

fn main() {
    let quick = std::env::var_os("HYPART_PARTITION_QUICK").is_some();
    let rows = if quick { 4_000 } else { 25_000 };
    let samples = if quick { 10 } else { 15 };
    let workers = 8;

    let (d, rules) = workload(rows);

    // Parity guard before timing anything: the parallel path must be
    // bit-identical to the reference on the bench dataset.
    let pool_1 = Arc::new(WorkPool::new(1));
    let pool_8 = Arc::new(WorkPool::new(8));

    let oracle = partition_reference(&d, &rules, &HyPartConfig::new(workers));
    for (threads, pool) in [(1, &pool_1), (8, &pool_8)] {
        let p = partition(&d, &rules, &config(workers, threads, ShardExecution::Threaded));
        assert_eq!(p.stats, oracle.stats, "parallel path diverged at {threads} threads");
        let p = partition(&d, &rules, &config_pooled(workers, threads, pool));
        assert_eq!(p.stats, oracle.stats, "pooled path diverged at {threads} lanes");
    }

    // Interleaved rounds: every variant runs once per round, so each ratio
    // compares timings taken moments apart (see the header on host drift).
    // The simulated makespans come from `partition_timed`, which times each
    // shard uncontended; they ride the same rounds for the same reason.
    let time = |f: &dyn Fn()| -> u64 {
        let t = Instant::now();
        f();
        t.elapsed().as_nanos() as u64
    };
    let mut rounds: [Vec<u64>; 5] = Default::default();
    for _ in 0..samples {
        rounds[0].push(time(&|| {
            black_box(partition_reference(&d, &rules, &HyPartConfig::new(workers)));
        }));
        rounds[1].push(time(&|| {
            black_box(partition(&d, &rules, &config_pooled(workers, 1, &pool_1)));
        }));
        rounds[2].push(time(&|| {
            black_box(partition(&d, &rules, &config_pooled(workers, 8, &pool_8)));
        }));
        for (slot, threads) in [(3usize, 1usize), (4, 8)] {
            let (_, t) =
                partition_timed(&d, &rules, &config(workers, threads, ShardExecution::Simulated));
            rounds[slot].push(t.makespan_ns());
        }
    }
    let median = |lane: &[u64]| -> f64 {
        let mut v = lane.to_vec();
        v.sort_unstable();
        let mid = v.len() / 2;
        if v.len() % 2 == 1 {
            v[mid] as f64
        } else {
            (v[mid - 1] + v[mid]) as f64 / 2.0
        }
    };
    let [seq, par_1t, par_8t, sim_1t, sim_8t] = rounds.each_ref().map(|lane| median(lane));
    for (name, ns) in [
        ("partition/seq_reference", seq),
        ("partition/par_1t", par_1t),
        ("partition/par_8t", par_8t),
        ("partition/sim_makespan_1t", sim_1t),
        ("partition/sim_makespan_8t", sim_8t),
    ] {
        eprintln!("bench: {name:<48} {ns:>14.1} ns/iter (median of {samples})");
    }

    write_report(rows, workers, [seq, par_1t, par_8t, sim_1t, sim_8t], quick);
}

fn write_report(rows: usize, workers: usize, medians: [f64; 5], quick: bool) {
    use serde_json::{Map, Value};

    let [seq, par_1t, par_8t, sim_1t, sim_8t] = medians;

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let speedup_threaded = seq / par_8t;
    let speedup_simulated = sim_1t / sim_8t;
    // The threaded ratio is only meaningful with enough physical cores;
    // otherwise report the simulated-makespan ratio and say so.
    let (speedup_8t, mode) = if cores >= 8 {
        (speedup_threaded, "threaded_wall")
    } else {
        (speedup_simulated, "simulated_makespan")
    };

    let mut root = Map::new();
    root.insert("bench", Value::from("hypart_partition"));
    root.insert("rows_per_relation", Value::from(rows));
    root.insert("workers", Value::from(workers));
    root.insert("quick", Value::from(quick));
    root.insert("cores", Value::from(cores));
    root.insert("seq_reference_ns", Value::from(seq));
    root.insert("par_1t_ns", Value::from(par_1t));
    root.insert("par_8t_ns", Value::from(par_8t));
    root.insert("sim_makespan_1t_ns", Value::from(sim_1t));
    root.insert("sim_makespan_8t_ns", Value::from(sim_8t));
    root.insert("speedup_8t_threaded", Value::from(speedup_threaded));
    root.insert("speedup_8t_simulated", Value::from(speedup_simulated));
    root.insert("speedup_8t", Value::from(speedup_8t));
    root.insert("speedup_mode", Value::from(mode));
    root.insert("seq_regression", Value::from(par_1t / seq));

    let path = if quick {
        let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results");
        std::fs::create_dir_all(dir).expect("create results dir");
        format!("{dir}/BENCH_hypart_partition_quick.json")
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_hypart_partition.json").to_string()
    };
    let body = serde_json::to_string_pretty(&Value::Object(root)).expect("render json");
    std::fs::write(&path, body + "\n").expect("write hypart_partition report");
    eprintln!("wrote {path}");
}
