//! Incremental-maintenance benchmark: a resident [`dcer_chase::ChaseEngine`]
//! absorbing CDC batches via `apply_update` versus re-running the pipeline
//! from scratch after every update.
//!
//! The workload is a key-blocked ML matching rule (`t.k = s.k` plus an
//! n-gram cosine classifier on a long description attribute) over `rows`
//! tuples, churned at ~1% per update with balanced insert/delete batches.
//! Deletions land on tuples that support match facts, so every batch takes
//! the expensive path: DRed cascade, survivor-state rebuild, full rederive.
//! The incremental win the bench pins is therefore not "skip the join" but
//! the resident state the paper's Section V-A remark motivates: the ML
//! oracle's memo (keyed on stable tuple ids) survives across updates, so
//! only delta pairs pay real classifier calls, while a from-scratch run
//! repays the classifier for every blocked pair and rebuilds the engine.
//!
//! Before timing anything the bench pins equivalence: after a few churn
//! batches the resident engine's closure must equal a from-scratch run over
//! the same final dataset. Results go to `BENCH_chase_incremental.json` at
//! the workspace root (or, with `CHASE_INCREMENTAL_QUICK` set, a reduced
//! run to `results/BENCH_chase_incremental_quick.json` for the CI
//! `incremental-smoke` job, which floors `incremental_speedup` at 5x).

use criterion::{black_box, Criterion};
use dcer_chase::{ChaseEngine, UpdateDelta};
use dcer_core::DcerSession;
use dcer_ml::{MlRegistry, NgramCosineClassifier};
use dcer_relation::{Catalog, Dataset, RelationSchema, Tid, Tuple, UpdateBatch, ValueType};
use std::cell::RefCell;
use std::collections::{BTreeSet, VecDeque};
use std::sync::Arc;

/// Live tuples per key block, kept stable under churn.
const BLOCK: usize = 8;

fn catalog() -> Arc<Catalog> {
    Arc::new(
        Catalog::from_schemas(vec![RelationSchema::of(
            "R",
            &[("k", ValueType::Str), ("x", ValueType::Str)],
        )])
        .unwrap(),
    )
}

/// Row `i`'s attributes: a key blocking it with ~`BLOCK` peers, and a long
/// description unique to the row (the trailing serial) but n-gram-similar
/// within the block (the shared base text), so same-key pairs clear the 0.5
/// cosine threshold and every pair is a distinct classifier input.
fn row(i: usize, keys: usize) -> (String, String) {
    let k = format!("k{}", i % keys);
    let x = format!(
        "asset record group {g} high-density storage rack assembly with extended \
         service coverage tier {t} facility block {b} serial {i}",
        g = i % keys,
        t = i % 5,
        b = i % 23,
    );
    (k, x)
}

/// Deterministic balanced churn: every batch deletes the `half` oldest live
/// tuples and inserts `half` fresh rows into the same key space, keeping
/// `|D|` and the per-block sizes stable across arbitrarily many batches.
struct Churn {
    master: Dataset,
    live: VecDeque<Tid>,
    next: usize,
    keys: usize,
    half: usize,
}

impl Churn {
    fn new(rows: usize, churn: usize) -> Churn {
        let keys = (rows / BLOCK).max(1);
        let mut master = Dataset::new(catalog());
        let mut live = VecDeque::with_capacity(rows);
        for i in 0..rows {
            let (k, x) = row(i, keys);
            live.push_back(master.insert(0, vec![k.into(), x.into()]).unwrap());
        }
        Churn { master, live, next: rows, keys, half: (churn / 2).max(1) }
    }

    /// Apply one churn batch to the master and the resident engine.
    fn step(&mut self, engine: &mut ChaseEngine) -> UpdateDelta {
        let mut batch = UpdateBatch::new();
        for _ in 0..self.half {
            batch.delete(self.live.pop_front().expect("live tuples remain"));
        }
        for _ in 0..self.half {
            let (k, x) = row(self.next, self.keys);
            self.next += 1;
            batch.insert(0, vec![k.into(), x.into()]);
        }
        let report = self.master.apply_update(&batch).expect("churn batch applies");
        let inserts: Vec<Tuple> = report
            .inserted
            .iter()
            .map(|&tid| self.master.tuple(tid).expect("just inserted").clone())
            .collect();
        self.live.extend(report.inserted.iter().copied());
        engine.apply_update(inserts, &report.deleted)
    }
}

fn main() {
    let quick = std::env::var_os("CHASE_INCREMENTAL_QUICK").is_some();
    let rows = if quick { 2_000 } else { 8_000 };
    let samples = if quick { 5 } else { 10 };
    let churn = (rows / 100).max(2); // ~1% of |D| per update, half each way

    let rules = dcer_mrl::parse_rules(
        &catalog(),
        "match sim: R(t), R(s), t.k = s.k, m(t.x, s.x) -> t.id = s.id",
    )
    .unwrap();
    let mut registry = MlRegistry::new();
    registry.register("m", Arc::new(NgramCosineClassifier::new(0.5)));
    let session = DcerSession::new(catalog(), rules, registry);

    let mut stream = Churn::new(rows, churn);
    let mut engine = session.incremental_engine(&stream.master).expect("build resident engine");
    engine.run_local_fixpoint();

    // Equivalence pin before timing: after churn batches (which exercise
    // cascade + rederive + seeded joins), the resident closure must equal a
    // from-scratch run over the same final dataset.
    for _ in 0..2 {
        stream.step(&mut engine);
    }
    let mut resident = engine.state_mut().clone();
    let mut oracle = session.run_sequential(&stream.master);
    assert_eq!(
        resident.matches.clusters(),
        oracle.matches.clusters(),
        "resident engine diverged from the from-scratch closure"
    );
    assert_eq!(
        resident.validated.iter().copied().collect::<BTreeSet<_>>(),
        oracle.validated.iter().copied().collect::<BTreeSet<_>>(),
        "resident validated facts diverged"
    );

    let mut c = Criterion::default().sample_size(samples);

    // The cost of refusing incrementality: one full pipeline run (engine
    // build + every blocked pair through the classifier) per update.
    let snapshot = stream.master.clone();
    c.bench_function("update/scratch_rerun", |b| {
        b.iter(|| black_box(session.run_sequential(&snapshot)))
    });

    // The resident path: each iteration is one genuine 1%-churn batch
    // (deletes cascade, the rederive replays joins against the warm memo,
    // only delta pairs pay real classifier calls).
    let cell = RefCell::new((stream, engine));
    c.bench_function("update/incremental", |b| {
        b.iter(|| {
            let (stream, engine) = &mut *cell.borrow_mut();
            black_box(stream.step(engine))
        })
    });
    c.report();

    write_report(&c, rows, churn, quick);
}

fn write_report(c: &Criterion, rows: usize, churn: usize, quick: bool) {
    use serde_json::{Map, Value};

    let mean = |id: &str| {
        c.results()
            .iter()
            .find(|r| r.id == id)
            .map(|r| r.mean_ns)
            .unwrap_or_else(|| panic!("missing bench result {id}"))
    };
    let scratch = mean("update/scratch_rerun");
    let incremental = mean("update/incremental");

    let mut root = Map::new();
    root.insert("bench", Value::from("chase_incremental"));
    root.insert("rows", Value::from(rows));
    root.insert("block_size", Value::from(BLOCK));
    root.insert("churn_per_update", Value::from(churn));
    root.insert("quick", Value::from(quick));
    root.insert("scratch_ns", Value::from(scratch));
    root.insert("incremental_ns", Value::from(incremental));
    root.insert("incremental_speedup", Value::from(scratch / incremental));

    let path = if quick {
        let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results");
        std::fs::create_dir_all(dir).expect("create results dir");
        format!("{dir}/BENCH_chase_incremental_quick.json")
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_chase_incremental.json").to_string()
    };
    let body = serde_json::to_string_pretty(&Value::Object(root)).expect("render json");
    std::fs::write(&path, body + "\n").expect("write chase_incremental report");
    eprintln!("wrote {path}");
}
