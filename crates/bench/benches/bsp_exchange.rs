//! BSP exchange benchmark: zero-copy `DeltaBatch` routing versus a
//! clone-per-recipient baseline, on the acceptance workload of 8 workers
//! each broadcasting 100k facts.
//!
//! Measures three levels:
//!   * `route/*`   — the raw fan-out cost of handing one payload to the 7
//!     peers (Arc bump vs `Vec<Fact>` deep copy);
//!   * `exchange/*` — a full `run_bsp` superstep with all 8 workers
//!     broadcasting, including mailbox delivery and cost accounting;
//!   * `merge/*`   — folding a 7-batch inbox with `DeltaBatch::merge_all`.
//!
//! After measuring, the headline throughputs and the arc-vs-clone speedups
//! are written to `BENCH_bsp_exchange.json` at the workspace root so the
//! zero-copy claim is recorded alongside the code.

use criterion::{black_box, Criterion};
use dcer_bsp::{
    run_bsp, run_bsp_with, CostModel, ExecutionMode, FaultConfig, Message, Worker, WorkerId,
};
use dcer_chase::{BatchStats, DeltaBatch, Fact};
use dcer_relation::Tid;

const WORKERS: usize = 8;
const FACTS: usize = 100_000;

/// Distinct Id facts; every pair canonicalizes to a unique fact so the
/// batch keeps exactly `n` entries.
fn workload(n: usize) -> Vec<Fact> {
    (0..n).map(|i| Fact::id(Tid::new(0, i as u32), Tid::new(1, i as u32))).collect()
}

/// Baseline message: owns its facts, so routing it to `k` recipients
/// deep-copies the payload `k` times. This is exactly what the pre-batch
/// runtime did with `Vec<Fact>` deltas.
#[derive(Clone)]
struct OwnedBatch(Vec<Fact>);

impl Message for OwnedBatch {
    fn size_bytes(&self) -> usize {
        self.0.iter().map(Fact::size_bytes).sum()
    }

    fn unit_count(&self) -> usize {
        self.0.len()
    }
}

/// Worker that broadcasts its payload in superstep 0 and then quiesces —
/// the communication skeleton of one DMatch exchange round.
struct BroadcastOnce<M: Message> {
    id: WorkerId,
    shards: usize,
    payload: M,
}

impl<M: Message> Worker for BroadcastOnce<M> {
    type Msg = M;

    fn initial(&mut self) -> Vec<(WorkerId, M)> {
        (0..self.shards).filter(|&w| w != self.id).map(|w| (w, self.payload.clone())).collect()
    }

    fn superstep(&mut self, inbox: Vec<M>) -> Vec<(WorkerId, M)> {
        black_box(inbox);
        Vec::new()
    }

    fn snapshot(&mut self) -> Option<M> {
        Some(self.payload.clone())
    }
}

fn exchange_workers<M: Message + Clone>(payload: &M) -> Vec<BroadcastOnce<M>> {
    (0..WORKERS).map(|id| BroadcastOnce { id, shards: WORKERS, payload: payload.clone() }).collect()
}

/// One realistic exchange round: broadcast the payload, then fold the
/// 7-batch inbox — the receiver-side work every actual DMatch superstep
/// performs before deducing. The checkpoint-overhead guard runs on this
/// pair: against a superstep with real work, not against bare Arc bumps.
struct BroadcastAndMerge {
    id: WorkerId,
    shards: usize,
    payload: DeltaBatch,
}

impl Worker for BroadcastAndMerge {
    type Msg = DeltaBatch;

    fn initial(&mut self) -> Vec<(WorkerId, DeltaBatch)> {
        (0..self.shards).filter(|&w| w != self.id).map(|w| (w, self.payload.clone())).collect()
    }

    fn superstep(&mut self, inbox: Vec<DeltaBatch>) -> Vec<(WorkerId, DeltaBatch)> {
        if !inbox.is_empty() {
            let mut stats = BatchStats::default();
            black_box(DeltaBatch::merge_all(&inbox, &mut stats));
        }
        Vec::new()
    }

    fn snapshot(&mut self) -> Option<DeltaBatch> {
        Some(self.payload.clone())
    }
}

fn round_workers(payload: &DeltaBatch) -> Vec<BroadcastAndMerge> {
    (0..WORKERS)
        .map(|id| BroadcastAndMerge { id, shards: WORKERS, payload: payload.clone() })
        .collect()
}

fn main() {
    let mut c = Criterion::default().sample_size(20);
    let facts = workload(FACTS);
    let batch = DeltaBatch::new(facts.clone());
    assert_eq!(batch.len(), FACTS, "workload facts must be distinct");

    // Raw fan-out: one sender hands its delta to the 7 peers.
    c.bench_function("route/arc_batch", |b| {
        b.iter(|| {
            let routed: Vec<DeltaBatch> = (1..WORKERS).map(|_| batch.clone()).collect();
            black_box(routed)
        })
    });
    c.bench_function("route/clone_per_recipient", |b| {
        b.iter(|| {
            let routed: Vec<Vec<Fact>> = (1..WORKERS).map(|_| facts.clone()).collect();
            black_box(routed)
        })
    });

    // Full BSP round: all 8 workers broadcast, mailboxes are delivered,
    // bytes are accounted.
    let cost = CostModel::default();
    c.bench_function("exchange/arc_batch_8w_100k", |b| {
        b.iter(|| black_box(run_bsp(exchange_workers(&batch), ExecutionMode::Simulated, &cost)))
    });
    c.bench_function("exchange/clone_8w_100k", |b| {
        let owned = OwnedBatch(facts.clone());
        b.iter(|| black_box(run_bsp(exchange_workers(&owned), ExecutionMode::Simulated, &cost)))
    });
    // Same round with superstep checkpointing enabled (fault-tolerance on,
    // no injected faults): the overhead guard in CI keeps this within 5%
    // of the plain exchange.
    let ckpt = FaultConfig::checkpointing();
    c.bench_function("exchange/arc_batch_8w_100k_ckpt", |b| {
        b.iter(|| {
            black_box(
                run_bsp_with(exchange_workers(&batch), ExecutionMode::Simulated, &cost, &ckpt)
                    .unwrap(),
            )
        })
    });

    // Full round with receiver-side merge — the realistic superstep the
    // checkpoint-overhead guard compares against.
    c.bench_function("round/plain_8w_100k", |b| {
        b.iter(|| black_box(run_bsp(round_workers(&batch), ExecutionMode::Simulated, &cost)))
    });
    c.bench_function("round/ckpt_8w_100k", |b| {
        b.iter(|| {
            black_box(
                run_bsp_with(round_workers(&batch), ExecutionMode::Simulated, &cost, &ckpt)
                    .unwrap(),
            )
        })
    });

    // Receiver side: fold a 7-batch inbox into one delta.
    let inbox: Vec<DeltaBatch> = (1..WORKERS).map(|_| batch.clone()).collect();
    c.bench_function("merge/inbox_7x100k", |b| {
        b.iter(|| {
            let mut stats = BatchStats::default();
            black_box(DeltaBatch::merge_all(&inbox, &mut stats))
        })
    });

    c.report();
    write_report(&c);
}

/// Record the acceptance numbers at `<workspace>/BENCH_bsp_exchange.json`.
fn write_report(c: &Criterion) {
    use serde_json::{Map, Value};

    let mean = |id: &str| {
        c.results()
            .iter()
            .find(|r| r.id == id)
            .map(|r| r.mean_ns)
            .unwrap_or_else(|| panic!("missing bench result {id}"))
    };
    // Facts crossing the exchange in one full round: each of the 8 workers
    // broadcasts its 100k facts to 7 peers.
    let routed_facts = (WORKERS * (WORKERS - 1) * FACTS) as f64;
    let throughput = |ns: f64| routed_facts / (ns / 1e9);

    let exchange_arc_ns = mean("exchange/arc_batch_8w_100k");
    let exchange_clone_ns = mean("exchange/clone_8w_100k");
    let exchange_ckpt_ns = mean("exchange/arc_batch_8w_100k_ckpt");
    let route_arc_ns = mean("route/arc_batch");
    let route_clone_ns = mean("route/clone_per_recipient");

    let bench = |ns: f64| {
        let mut m = Map::new();
        m.insert("mean_ns", Value::from(ns));
        m.insert("facts_per_sec", Value::from(throughput(ns)));
        Value::Object(m)
    };
    let mut root = Map::new();
    root.insert("bench", Value::from("bsp_exchange"));
    root.insert("workers", Value::from(WORKERS));
    root.insert("facts_per_worker", Value::from(FACTS));
    root.insert("routed_facts_per_round", Value::from(routed_facts));
    root.insert("exchange_arc_batch", bench(exchange_arc_ns));
    root.insert("exchange_clone_per_recipient", bench(exchange_clone_ns));
    root.insert("exchange_speedup", Value::from(exchange_clone_ns / exchange_arc_ns));
    root.insert("exchange_ckpt", bench(exchange_ckpt_ns));
    // Checkpointing cost relative to the bare zero-copy exchange (pure
    // Arc-bump bookkeeping, microseconds): informational only — any fixed
    // cost looks huge against a near-zero baseline.
    root.insert("exchange_ckpt_ratio", Value::from(exchange_ckpt_ns / exchange_arc_ns));
    // The guarded number: checkpointing overhead on a superstep with real
    // receiver-side work. CI requires checkpoint_overhead <= 1.05.
    let round_plain_ns = mean("round/plain_8w_100k");
    let round_ckpt_ns = mean("round/ckpt_8w_100k");
    root.insert("round_plain_ns", Value::from(round_plain_ns));
    root.insert("round_ckpt_ns", Value::from(round_ckpt_ns));
    root.insert("checkpoint_overhead", Value::from(round_ckpt_ns / round_plain_ns));
    root.insert("route_arc_batch_ns", Value::from(route_arc_ns));
    root.insert("route_clone_per_recipient_ns", Value::from(route_clone_ns));
    root.insert("route_speedup", Value::from(route_clone_ns / route_arc_ns));
    root.insert("merge_inbox_7x100k_ns", Value::from(mean("merge/inbox_7x100k")));

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_bsp_exchange.json");
    let body = serde_json::to_string_pretty(&Value::Object(root)).expect("render json");
    std::fs::write(path, body + "\n").expect("write BENCH_bsp_exchange.json");
    eprintln!("wrote {path}");
}
