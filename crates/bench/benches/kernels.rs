//! Micro-benchmarks of the hot kernels: similarity metrics, embeddings,
//! union-find, inverted-index probes, and hash-function evaluation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dcer_chase::MatchSet;
use dcer_ml::HashedNgramEmbedder;
use dcer_relation::{
    Catalog, Dataset, HashIndex, RelationSchema, Tid, Value, ValueDict, ValueType,
};
use dcer_similarity::*;
use std::sync::Arc;

fn bench_similarity(c: &mut Criterion) {
    let a = "ThinkPad X1 Carbon 7th Gen : 14-Inch, 16GB RAM, 512GB Nvme SSD";
    let b = "ThinkPad X1 Carbon 7th Gen 14\" - 16 GB RAM - 512 GB SSD";
    let mut g = c.benchmark_group("similarity");
    g.bench_function("levenshtein_60ch", |bch| {
        bch.iter(|| levenshtein(black_box(a), black_box(b)))
    });
    g.bench_function("jaro_winkler_60ch", |bch| {
        bch.iter(|| jaro_winkler(black_box(a), black_box(b), 0.1))
    });
    g.bench_function("ngram_cosine3_60ch", |bch| {
        bch.iter(|| ngram_cosine(black_box(a), black_box(b), 3))
    });
    g.bench_function("monge_elkan_60ch", |bch| {
        bch.iter(|| monge_elkan(black_box(a), black_box(b)))
    });
    g.finish();
}

fn bench_embedding(c: &mut Criterion) {
    let e = HashedNgramEmbedder::default();
    let text = "Deep and collective entity resolution in parallel databases";
    let mut g = c.benchmark_group("embedding");
    g.bench_function("embed_text_8_words", |b| b.iter(|| e.embed_text(black_box(text))));
    g.bench_function("cosine_8_words", |b| {
        b.iter(|| {
            e.cosine(black_box(text), black_box("Deep entity matching in distributed databases"))
        })
    });
    g.finish();
}

fn bench_union_find(c: &mut Criterion) {
    c.bench_function("matchset_chain_merge_10k", |b| {
        b.iter(|| {
            let mut m = MatchSet::new();
            for i in 0..10_000u32 {
                m.merge(Tid::new(0, i), Tid::new(0, i + 1));
            }
            black_box(m.merge_count())
        })
    });
    c.bench_function("matchset_query_after_merges", |b| {
        let mut m = MatchSet::new();
        for i in 0..10_000u32 {
            m.merge(Tid::new(0, i % 100), Tid::new(0, i));
        }
        b.iter(|| black_box(m.are_matched(Tid::new(0, 17), Tid::new(0, 9_999))))
    });
}

fn bench_index(c: &mut Criterion) {
    let cat = Arc::new(
        Catalog::from_schemas(vec![RelationSchema::of("R", &[("k", ValueType::Str)])]).unwrap(),
    );
    let mut d = Dataset::new(cat);
    for i in 0..50_000 {
        d.insert(0, vec![format!("key{}", i % 5_000).into()]).unwrap();
    }
    c.bench_function("hash_index_build_50k", |b| {
        b.iter(|| {
            let mut dict = ValueDict::new();
            black_box(HashIndex::build(&d, 0, 0, &mut dict))
        })
    });
    let mut dict = ValueDict::new();
    let idx = HashIndex::build(&d, 0, 0, &mut dict);
    let probe = Value::str("key123");
    c.bench_function("hash_index_probe", |b| b.iter(|| black_box(idx.lookup(&dict, &probe).len())));
    let code = dict.code_of(&probe).unwrap();
    c.bench_function("hash_index_probe_code", |b| {
        b.iter(|| black_box(idx.lookup_code(code).len()))
    });
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(20);
    targets = bench_similarity, bench_embedding, bench_union_find, bench_index
}
criterion_main!(kernels);
