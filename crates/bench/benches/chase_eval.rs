//! Valuation-enumeration benchmark: the compiled-program enumerator
//! (dictionary-encoded probes, static join order, reusable scratch) versus
//! the original greedy enumerator, on the join shapes that dominate the
//! chase: string-keyed equi-join, three-atom chain join, seeded delta
//! re-joins (`IncDeduce`), and a constant-filtered join.
//!
//! The headline acceptance number is the equi-join speedup at 100k rows
//! per relation. After measuring, results are written to
//! `BENCH_chase_eval.json` at the workspace root (or, with
//! `CHASE_EVAL_QUICK` set, a reduced run to
//! `results/BENCH_chase_eval_quick.json` for the CI smoke job).

use criterion::{black_box, Criterion};
use dcer_chase::{
    enumerate_valuations_greedy, enumerate_with_program, CompiledRule, EvalScratch, MlSigTable,
    RecPred, RuleProgram, ValuationSink,
};
use dcer_mrl::TupleVar;
use dcer_relation::{Catalog, Dataset, IndexSet, RelationSchema, Tuple, ValueType};
use std::sync::Arc;

/// Counting sink: no storage, so the measurement is the enumerator itself.
struct CountOnly(u64);

impl ValuationSink for CountOnly {
    fn prune_rec(&mut self, _p: &RecPred, _l: &Tuple, _r: &Tuple) -> bool {
        false
    }
    fn visit(&mut self, rows: &[u32]) {
        self.0 += rows.len() as u64;
    }
}

struct Workload {
    dataset: Dataset,
    plans: Vec<CompiledRule>,
}

/// `rows` tuples per relation; every key appears twice in R and twice in S,
/// so the equi-join output is linear in `rows` (each R row meets 2 S rows).
/// R.v marks ~1% of rows "hot" for the constant-filter shape.
fn workload(rows: usize) -> Workload {
    let cat = Arc::new(
        Catalog::from_schemas(vec![
            RelationSchema::of("R", &[("k", ValueType::Str), ("v", ValueType::Str)]),
            RelationSchema::of("S", &[("k", ValueType::Str), ("w", ValueType::Str)]),
        ])
        .unwrap(),
    );
    let mut dataset = Dataset::new(cat);
    let keys = rows / 2;
    for i in 0..rows {
        let v = if i % 100 == 0 { "hot".to_string() } else { format!("v{}", i % 37) };
        dataset.insert(0, vec![format!("key{}", i % keys).into(), v.into()]).unwrap();
        dataset.insert(1, vec![format!("key{}", i % keys).into(), format!("w{i}").into()]).unwrap();
    }
    let rules = dcer_mrl::parse_rules(
        dataset.catalog(),
        r#"match equi: R(t), S(s), t.k = s.k -> dummy(t.k, s.k);
           match chain: R(t), S(s), R(u), t.k = s.k, s.k = u.k -> t.id = u.id;
           match constf: R(t), S(s), t.k = s.k, t.v = "hot" -> dummy(t.k, s.k)"#,
    )
    .unwrap();
    let sigs = MlSigTable::build(&rules);
    Workload { dataset, plans: CompiledRule::compile_all(&rules, &sigs) }
}

fn main() {
    let quick = std::env::var_os("CHASE_EVAL_QUICK").is_some();
    let rows = if quick { 5_000 } else { 100_000 };
    let samples = if quick { 10 } else { 20 };
    let mut c = Criterion::default().sample_size(samples);

    let w = workload(rows);
    let d = &w.dataset;

    // Pre-build indexes and programs outside the measured loops: program
    // compilation happens once per rule per index generation in the engine.
    let mut indexes = IndexSet::new();
    let programs: Vec<RuleProgram> =
        w.plans.iter().map(|p| RuleProgram::compile(p, d, &mut indexes)).collect();
    let mut scratch = EvalScratch::new();

    let mut expected = Vec::new();
    for (name, pi) in [("equi_join", 0), ("chain_join", 1), ("const_filter", 2)] {
        let plan = &w.plans[pi];
        let program = &programs[pi];
        let mut sink = CountOnly(0);
        let n = enumerate_with_program(program, plan, d, &indexes, &[], &mut scratch, &mut sink);
        let mut gsink = CountOnly(0);
        let g = enumerate_valuations_greedy(plan, d, &mut indexes, &[], &mut gsink);
        assert_eq!(n, g, "{name}: enumerators disagree");
        expected.push(n);

        c.bench_function(format!("{name}/compiled").as_str(), |b| {
            b.iter(|| {
                let mut sink = CountOnly(0);
                black_box(enumerate_with_program(
                    program,
                    plan,
                    d,
                    &indexes,
                    &[],
                    &mut scratch,
                    &mut sink,
                ))
            })
        });
        c.bench_function(format!("{name}/greedy").as_str(), |b| {
            b.iter(|| {
                let mut sink = CountOnly(0);
                black_box(enumerate_valuations_greedy(plan, d, &mut indexes, &[], &mut sink))
            })
        });
    }

    // Seeded delta-join (`IncDeduce` shape): re-evaluate the equi-join rule
    // for a block of seed rows, as update-driven re-joins do.
    let seed_count = (rows / 100).max(1) as u32;
    let plan = &w.plans[0];
    let program = &programs[0];
    c.bench_function("seeded_delta/compiled", |b| {
        b.iter(|| {
            let mut sink = CountOnly(0);
            for row in 0..seed_count {
                black_box(enumerate_with_program(
                    program,
                    plan,
                    d,
                    &indexes,
                    &[(TupleVar(0), row)],
                    &mut scratch,
                    &mut sink,
                ));
            }
            sink.0
        })
    });
    c.bench_function("seeded_delta/greedy", |b| {
        b.iter(|| {
            let mut sink = CountOnly(0);
            for row in 0..seed_count {
                black_box(enumerate_valuations_greedy(
                    plan,
                    d,
                    &mut indexes,
                    &[(TupleVar(0), row)],
                    &mut sink,
                ));
            }
            sink.0
        })
    });

    c.report();
    write_report(&c, rows, seed_count, &expected, quick);
}

/// Record the acceptance numbers (`<shape>.speedup` = greedy / compiled).
fn write_report(c: &Criterion, rows: usize, seeds: u32, valuations: &[u64], quick: bool) {
    use serde_json::{Map, Value};

    let mean = |id: &str| {
        c.results()
            .iter()
            .find(|r| r.id == id)
            .map(|r| r.mean_ns)
            .unwrap_or_else(|| panic!("missing bench result {id}"))
    };

    let mut root = Map::new();
    root.insert("bench", Value::from("chase_eval"));
    root.insert("rows_per_relation", Value::from(rows));
    root.insert("quick", Value::from(quick));
    for (i, shape) in ["equi_join", "chain_join", "const_filter"].iter().enumerate() {
        let compiled = mean(&format!("{shape}/compiled"));
        let greedy = mean(&format!("{shape}/greedy"));
        let mut m = Map::new();
        m.insert("compiled_ns", Value::from(compiled));
        m.insert("greedy_ns", Value::from(greedy));
        m.insert("speedup", Value::from(greedy / compiled));
        m.insert("valuations", Value::from(valuations[i]));
        root.insert(shape.to_string(), Value::Object(m));
    }
    let compiled = mean("seeded_delta/compiled");
    let greedy = mean("seeded_delta/greedy");
    let mut m = Map::new();
    m.insert("compiled_ns", Value::from(compiled));
    m.insert("greedy_ns", Value::from(greedy));
    m.insert("speedup", Value::from(greedy / compiled));
    m.insert("seeds", Value::from(seeds as i64));
    root.insert("seeded_delta", Value::Object(m));

    let path = if quick {
        let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results");
        std::fs::create_dir_all(dir).expect("create results dir");
        format!("{dir}/BENCH_chase_eval_quick.json")
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_chase_eval.json").to_string()
    };
    let body = serde_json::to_string_pretty(&Value::Object(root)).expect("render json");
    std::fs::write(&path, body + "\n").expect("write chase_eval report");
    eprintln!("wrote {path}");
}
