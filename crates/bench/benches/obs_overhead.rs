//! Observability overhead benchmark: the same parallel DMatch run with
//! tracing disabled (no recorder installed — the single-relaxed-load
//! fast path) versus enabled (an [`dcer_obs::InMemoryCollector`]
//! receiving every span, flow edge and metric the pipeline emits).
//!
//! Unlike the Criterion benches, the two arms are measured *paired*: each
//! round times one disabled run immediately followed by one enabled run,
//! and the headline `enabled_overhead` is the ratio of the two *minimum*
//! round times. The minimum over N rounds estimates the uncontended
//! runtime of each arm — machine-level noise (a busy CI neighbor, thermal
//! throttling) only ever adds time, so min/min is far more stable than
//! mean/mean, which swings ±40% run to run on shared runners. The median
//! per-round ratio is reported alongside as a cross-check.
//!
//! CI asserts `obs.enabled_overhead <= 1.10` via `scripts/bench_guard.py`,
//! so instrumentation growth that taxes the hot path more than 10% fails
//! the build. Results go to `BENCH_obs_overhead.json` at the workspace
//! root (or, with `OBS_OVERHEAD_QUICK` set, a reduced run to
//! `results/BENCH_obs_overhead_quick.json` for the CI smoke job).

use dcer_bench::{tpch_workload, Workload};
use dcer_core::DmatchConfig;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

fn run_disabled(w: &Workload, cfg: &DmatchConfig) -> u64 {
    let t0 = Instant::now();
    black_box(w.session.run_parallel(&w.data, cfg).unwrap());
    t0.elapsed().as_nanos() as u64
}

fn run_enabled(w: &Workload, cfg: &DmatchConfig) -> u64 {
    // A fresh collector per run so buffered spans from prior runs never
    // skew push costs; install/uninstall are two RwLock writes, negligible
    // against a full pipeline run and excluded from the timed window
    // anyway (a real profiling session installs once, outside the run).
    let collector = Arc::new(dcer_obs::InMemoryCollector::new());
    dcer_obs::install(collector.clone());
    let t0 = Instant::now();
    black_box(w.session.run_parallel(&w.data, cfg).unwrap());
    let dur = t0.elapsed().as_nanos() as u64;
    dcer_obs::uninstall();
    black_box(collector);
    dur
}

fn main() {
    let quick = std::env::var_os("OBS_OVERHEAD_QUICK").is_some();
    let (scale, rounds) = if quick { (0.5, 11) } else { (1.0, 21) };
    let workers = 8;

    let w = tpch_workload(scale, 0.3);
    let cfg = DmatchConfig::new(workers);

    assert!(!dcer_obs::enabled(), "bench requires a recorder-free process at start");

    // Warm both paths (page cache, allocator arenas, lazy statics) outside
    // the measured rounds.
    run_disabled(&w, &cfg);
    run_enabled(&w, &cfg);

    let mut disabled = Vec::with_capacity(rounds);
    let mut enabled = Vec::with_capacity(rounds);
    let mut ratios = Vec::with_capacity(rounds);
    for round in 0..rounds {
        let d = run_disabled(&w, &cfg);
        let e = run_enabled(&w, &cfg);
        disabled.push(d);
        enabled.push(e);
        ratios.push(e as f64 / d as f64);
        eprintln!(
            "round {round:2}: disabled {:9.3} ms  enabled {:9.3} ms  ratio {:.4}",
            d as f64 / 1e6,
            e as f64 / 1e6,
            e as f64 / d as f64
        );
    }

    let min = |v: &[u64]| *v.iter().min().expect("rounds > 0") as f64;
    let median = |v: &mut Vec<f64>| {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[v.len() / 2]
    };
    let (min_d, min_e) = (min(&disabled), min(&enabled));
    let overhead = min_e / min_d;
    let median_ratio = median(&mut ratios);
    write_report(min_d, min_e, overhead, median_ratio, scale, workers, rounds, quick);
}

#[allow(clippy::too_many_arguments)]
fn write_report(
    disabled_min_ns: f64,
    enabled_min_ns: f64,
    overhead: f64,
    median_ratio: f64,
    scale: f64,
    workers: usize,
    rounds: usize,
    quick: bool,
) {
    use serde_json::{Map, Value};

    let mut obs = Map::new();
    obs.insert("disabled_min_ns", Value::from(disabled_min_ns));
    obs.insert("enabled_min_ns", Value::from(enabled_min_ns));
    obs.insert("enabled_overhead", Value::from(overhead));
    obs.insert("median_round_ratio", Value::from(median_ratio));

    let mut root = Map::new();
    root.insert("bench", Value::from("obs_overhead"));
    root.insert("scale", Value::from(scale));
    root.insert("workers", Value::from(workers));
    root.insert("rounds", Value::from(rounds));
    root.insert("quick", Value::from(quick));
    root.insert("obs", Value::Object(obs));

    let path = if quick {
        let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results");
        std::fs::create_dir_all(dir).expect("create results dir");
        format!("{dir}/BENCH_obs_overhead_quick.json")
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs_overhead.json").to_string()
    };
    let body = serde_json::to_string_pretty(&Value::Object(root)).expect("render json");
    std::fs::write(&path, body + "\n").expect("write obs_overhead report");
    eprintln!("wrote {path}  (enabled_overhead = {overhead:.4})");
}
