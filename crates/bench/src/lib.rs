//! Shared infrastructure for the experiment drivers (the `experiments`
//! binary) and Criterion benchmarks: dataset construction, DMatch runners,
//! and per-dataset baseline configurations.
//!
//! Every table and figure of the paper's Section VI has a corresponding
//! subcommand in `experiments`; see `DESIGN.md` §4 for the index.

use dcer_baselines::{
    DedoopLike, DeepErLike, DisDedupLike, ErBloxLike, JedAiLike, Matcher, PairwiseMlLike, SimKind,
    SparkErLike, WeightedScorer,
};
use dcer_core::{DcerSession, DmatchConfig, DmatchReport};
use dcer_datagen::{bib, movies, songs, tfacc, tpch, GroundTruth};
use dcer_eval::{evaluate_matchset, Metrics};
use dcer_ml::TrainedPairClassifier;
use dcer_relation::{AttrId, Dataset, RelId, Value};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

/// A benchmark dataset bundle: data, truth, session, and the relation /
/// attributes single-table baselines operate on.
pub struct Workload {
    /// Dataset name as printed in tables.
    pub name: &'static str,
    /// The data.
    pub data: Dataset,
    /// Exact ground truth.
    pub truth: GroundTruth,
    /// DMatch session (catalog + rules + models).
    pub session: DcerSession,
    /// Target relation for single-table baselines.
    pub target_rel: RelId,
    /// Textual attributes baselines compare.
    pub target_attrs: Vec<AttrId>,
    /// Blocking key attribute for key-based baselines.
    pub block_key: AttrId,
}

/// Global size multiplier applied to every workload (CLI `--scale`).
pub fn scaled(base: usize, scale: f64) -> usize {
    ((base as f64 * scale) as usize).max(8)
}

/// IMDB-style workload.
pub fn imdb_workload(scale: f64, dup: f64) -> Workload {
    let (data, truth) =
        movies::imdb_generate(&movies::ImdbConfig { films: scaled(600, scale), dup, seed: 5 });
    let session = DcerSession::from_source(
        movies::imdb_catalog(),
        movies::imdb_rules_source(),
        movies::make_registry(),
    )
    .unwrap();
    Workload {
        name: "IMDB",
        data,
        truth,
        session,
        target_rel: 0,
        target_attrs: vec![1, 3],
        block_key: 2, // year
    }
}

/// ACM-DBLP-style workload.
pub fn dblp_workload(scale: f64, dup: f64) -> Workload {
    let (data, truth) =
        bib::generate(&bib::BibConfig { articles: scaled(300, scale), dup, seed: 13 });
    let session =
        DcerSession::from_source(bib::catalog(), bib::rules_source(), bib::make_registry())
            .unwrap();
    Workload {
        name: "ACM-DBLP",
        data,
        truth,
        session,
        target_rel: bib::rel::ARTICLE,
        target_attrs: vec![1, 4],
        block_key: 3, // year
    }
}

/// Movie-style (5-table) workload.
pub fn movie_workload(scale: f64, dup: f64) -> Workload {
    let (data, truth) =
        movies::movie_generate(&movies::MovieConfig { movies: scaled(400, scale), dup, seed: 17 });
    let session = DcerSession::from_source(
        movies::movie_catalog(),
        movies::movie_rules_source(),
        movies::make_registry(),
    )
    .unwrap();
    Workload {
        name: "Movie",
        data,
        truth,
        session,
        target_rel: 0,
        target_attrs: vec![1, 2, 3],
        block_key: 2, // year
    }
}

/// Songs-style workload.
pub fn songs_workload(scale: f64, dup: f64) -> Workload {
    let (data, truth) =
        songs::generate(&songs::SongsConfig { songs: scaled(800, scale), dup, seed: 29 });
    let session =
        DcerSession::from_source(songs::catalog(), songs::rules_source(), songs::make_registry())
            .unwrap();
    Workload {
        name: "Songs",
        data,
        truth,
        session,
        target_rel: 0,
        target_attrs: vec![1, 2, 3],
        block_key: 4, // year
    }
}

/// TPCH workload (multi-table; baselines target `customer`).
pub fn tpch_workload(scale: f64, dup: f64) -> Workload {
    let (data, truth) = tpch::generate(&tpch::TpchConfig { scale: 0.05 * scale, dup, seed: 42 });
    let session =
        DcerSession::from_source(tpch::catalog(), tpch::rules_source(), tpch::make_registry())
            .unwrap();
    Workload {
        name: "TPCH",
        data,
        truth,
        session,
        target_rel: tpch::rel::CUSTOMER,
        // Name only: duplicate customers have Null addresses, which would
        // sink any averaged similarity below threshold.
        target_attrs: vec![1],
        block_key: 4, // phone
    }
}

/// TFACC workload (multi-table; baselines target `vehicle`).
pub fn tfacc_workload(scale: f64, dup: f64) -> Workload {
    let (data, truth) =
        tfacc::generate(&tfacc::TfaccConfig { vehicles: scaled(400, scale), dup, seed: 23 });
    let session =
        DcerSession::from_source(tfacc::catalog(), tfacc::rules_source(), tfacc::make_registry())
            .unwrap();
    Workload {
        name: "TFACC",
        data,
        truth,
        session,
        target_rel: tfacc::rel::VEHICLE,
        target_attrs: vec![2, 4],
        block_key: 2, // model
    }
}

/// One accuracy/time measurement.
#[derive(Debug, Clone, Copy)]
pub struct RunResult {
    /// Accuracy vs the workload's truth.
    pub metrics: Metrics,
    /// Wall seconds (sequential work on this host).
    pub wall_secs: f64,
    /// Simulated parallel seconds (partitioning + BSP makespan), when
    /// applicable.
    pub parallel_secs: Option<f64>,
}

/// Run DMatch on a workload with `n` workers.
pub fn run_dmatch(w: &Workload, n: usize, use_mqo: bool) -> (RunResult, DmatchReport) {
    let t0 = Instant::now();
    let mut cfg = DmatchConfig::new(n);
    cfg.use_mqo = use_mqo;
    let report = w.session.run_parallel(&w.data, &cfg).unwrap();
    let wall = t0.elapsed().as_secs_f64();
    let mut matches = report.outcome.matches.clone();
    let metrics = evaluate_matchset(&mut matches, &w.truth);
    (
        RunResult {
            metrics,
            wall_secs: wall,
            parallel_secs: Some(report.simulated_er_secs + report.partition_secs),
        },
        report,
    )
}

/// Run a rule-subset DMatch variant (`DMatch_C` / `DMatch_D`).
pub fn run_variant(w: &Workload, session: &DcerSession, n: usize) -> RunResult {
    let t0 = Instant::now();
    let report = session.run_parallel(&w.data, &DmatchConfig::new(n)).unwrap();
    let wall = t0.elapsed().as_secs_f64();
    let mut matches = report.outcome.matches.clone();
    RunResult {
        metrics: evaluate_matchset(&mut matches, &w.truth),
        wall_secs: wall,
        parallel_secs: Some(report.simulated_er_secs + report.partition_secs),
    }
}

/// Train the pairwise classifier the ML baselines use: a 2:1 train/test
/// split of the workload's labeled pairs (as in the paper's setup).
pub fn train_baseline_classifier(w: &Workload) -> TrainedPairClassifier {
    let tuples = w.data.relation(w.target_rel).tuples();
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let mut positives: Vec<(u32, u32)> = w
        .truth
        .pairs()
        .into_iter()
        .filter(|(a, b)| a.rel == w.target_rel && b.rel == w.target_rel)
        .filter_map(|(a, b)| {
            Some((
                w.data.relation(w.target_rel).position(a)?,
                w.data.relation(w.target_rel).position(b)?,
            ))
        })
        .collect();
    positives.sort_unstable();
    positives.shuffle(&mut rng);
    positives.truncate((positives.len() * 2 / 3).max(4));

    let mut examples = Vec::new();
    let vals = |row: usize| -> Vec<Value> {
        w.target_attrs.iter().map(|&a| tuples[row].get(a).clone()).collect()
    };
    for &(i, j) in &positives {
        examples.push((vals(i as usize), vals(j as usize), true));
        // Two negatives per positive: shifted partners.
        let k = (i as usize + 7) % tuples.len();
        let l = (j as usize + 13) % tuples.len();
        if !w.truth.are_duplicates(tuples[i as usize].tid, tuples[k].tid) && i as usize != k {
            examples.push((vals(i as usize), vals(k), false));
        }
        if !w.truth.are_duplicates(tuples[j as usize].tid, tuples[l].tid) && j as usize != l {
            examples.push((vals(j as usize), vals(l), false));
        }
    }
    if examples.is_empty() {
        examples.push((vec![Value::str("a")], vec![Value::str("a")], true));
        examples.push((vec![Value::str("a")], vec![Value::str("zz")], false));
    }
    TrainedPairClassifier::train(&examples, 250, 0.5)
}

/// Build the eight baseline matchers for a workload.
pub fn baselines_for(w: &Workload) -> Vec<Box<dyn Matcher>> {
    let scorer = || -> Box<WeightedScorer> {
        Box::new(WeightedScorer::uniform(&w.target_attrs, SimKind::MongeElkan))
    };
    let classifier = train_baseline_classifier(w);
    vec![
        Box::new(PairwiseMlLike {
            label: "DeepMa.-like".into(),
            rel: w.target_rel,
            attrs: w.target_attrs.clone(),
            classifier: classifier.clone(),
            window: 4,
        }),
        Box::new(JedAiLike {
            rel: w.target_rel,
            token_attrs: w.target_attrs.clone(),
            scorer: scorer(),
            threshold: 0.82,
        }),
        Box::new(ErBloxLike {
            rel: w.target_rel,
            block_keys: vec![w.block_key],
            attrs: w.target_attrs.clone(),
            classifier: classifier.clone(),
        }),
        Box::new(DeepErLike {
            rel: w.target_rel,
            attrs: w.target_attrs.clone(),
            classifier: classifier.clone(),
            bands: 8,
            rows_per_band: 2,
        }),
        Box::new(PairwiseMlLike {
            label: "Ditto-like".into(),
            rel: w.target_rel,
            attrs: w.target_attrs.clone(),
            classifier,
            window: 8,
        }),
        Box::new(DisDedupLike {
            rel: w.target_rel,
            block_key: w.block_key,
            scorer: scorer(),
            threshold: 0.85,
            workers: 16,
        }),
        Box::new(DedoopLike {
            rel: w.target_rel,
            block_key: w.block_key,
            scorer: scorer(),
            threshold: 0.85,
        }),
        Box::new(SparkErLike {
            rel: w.target_rel,
            token_attrs: w.target_attrs.clone(),
            meta_threshold: 0.5,
            scorer: scorer(),
            threshold: 0.82,
        }),
    ]
}

/// Run one baseline on a workload.
pub fn run_baseline(w: &Workload, m: &dyn Matcher) -> RunResult {
    let mut result = m.run(&w.data);
    let metrics = evaluate_matchset(&mut result.matches, &w.truth);
    RunResult { metrics, wall_secs: result.secs, parallel_secs: None }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_build_and_dmatch_runs() {
        for w in [
            imdb_workload(0.2, 0.3),
            dblp_workload(0.2, 0.3),
            movie_workload(0.2, 0.3),
            songs_workload(0.2, 0.3),
            tpch_workload(0.5, 0.3),
            tfacc_workload(0.2, 0.3),
        ] {
            let (r, _) = run_dmatch(&w, 2, true);
            assert!(r.metrics.f_measure > 0.5, "{}: F = {}", w.name, r.metrics.f_measure);
        }
    }

    #[test]
    fn baselines_run_on_a_workload() {
        let w = songs_workload(0.2, 0.3);
        for b in baselines_for(&w) {
            let r = run_baseline(&w, b.as_ref());
            assert!((0.0..=1.0).contains(&r.metrics.f_measure), "{}: {:?}", b.name(), r.metrics);
        }
    }
}
