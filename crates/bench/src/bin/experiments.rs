//! Experiment drivers reproducing every table and figure of the paper's
//! evaluation (Section VI). One subcommand per experiment:
//!
//! ```sh
//! cargo run --release -p dcer-bench --bin experiments -- all
//! cargo run --release -p dcer-bench --bin experiments -- table5 --scale 0.5
//! ```
//!
//! Absolute numbers differ from the paper (their substrate was a
//! 32-machine cluster over 30M-480M tuples; ours is a single container
//! over scaled-down synthetic analogues — see `DESIGN.md` §4/§5). The
//! *shapes* are the reproduction target: method ordering, ablation gaps,
//! MQO savings, parallel speedups. Results are also appended as JSON to
//! `results/experiments.jsonl` for archival.

use dcer_bench::*;
use dcer_eval::{format_series, format_table, table_json, Cell};
use dcer_mrl::parse_rules;
use std::fmt::Write as _;
use std::time::Instant;

struct Args {
    command: String,
    scale: f64,
    workers: usize,
    /// Explicit fault plan for the `chaos` experiment (e.g.
    /// `"crash 2@1; drop 0->1@1"`); seeded random plans when absent.
    fault_plan: Option<String>,
    fault_seed: u64,
    fault_cells: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        command: "all".into(),
        scale: 1.0,
        workers: 16,
        fault_plan: None,
        fault_seed: 7,
        fault_cells: 6,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--scale" => {
                i += 1;
                args.scale = argv[i].parse().expect("--scale <f64>");
            }
            "--workers" => {
                i += 1;
                args.workers = argv[i].parse().expect("--workers <n>");
            }
            "--fault-plan" => {
                i += 1;
                args.fault_plan = Some(argv[i].clone());
            }
            "--fault-seed" => {
                i += 1;
                args.fault_seed = argv[i].parse().expect("--fault-seed <u64>");
            }
            "--fault-cells" => {
                i += 1;
                args.fault_cells = argv[i].parse().expect("--fault-cells <n>");
            }
            cmd if !cmd.starts_with('-') => args.command = cmd.to_string(),
            other => panic!("unknown flag {other}"),
        }
        i += 1;
    }
    args
}

fn archive(json: serde_json::Value) {
    use std::io::Write;
    if let Ok(mut f) =
        std::fs::OpenOptions::new().create(true).append(true).open("results/experiments.jsonl")
    {
        let _ = writeln!(f, "{json}");
    }
}

fn emit(title: &str, headers: &[&str], rows: Vec<Vec<Cell>>) {
    println!("{}", format_table(title, headers, &rows));
    archive(table_json(title, headers, &rows));
}

/// Table V: F-measure and time for every method on the four labeled
/// corpora.
fn table5(scale: f64, workers: usize) {
    let dup = 0.3;
    let workloads = [
        imdb_workload(scale, dup),
        dblp_workload(scale, dup),
        movie_workload(scale, dup),
        songs_workload(scale, dup),
    ];
    // Baselines first (per paper layout), DMatch last. Build each
    // workload's baseline set (and its trained classifier) once.
    let per_workload: Vec<Vec<(String, RunResult)>> = workloads
        .iter()
        .map(|w| {
            baselines_for(w)
                .iter()
                .map(|b| (b.name().to_string(), run_baseline(w, b.as_ref())))
                .collect()
        })
        .collect();
    let mut rows: Vec<Vec<Cell>> = Vec::new();
    for bi in 0..per_workload[0].len() {
        let mut row: Vec<Cell> = vec![Cell::Str(per_workload[0][bi].0.clone())];
        for wl in &per_workload {
            let r = &wl[bi].1;
            row.push(Cell::F2(r.metrics.f_measure));
            row.push(Cell::F3(r.wall_secs));
        }
        rows.push(row);
    }
    let mut row: Vec<Cell> = vec!["DMatch".into()];
    for w in &workloads {
        let (r, _) = run_dmatch(w, workers, true);
        row.push(Cell::F2(r.metrics.f_measure));
        row.push(Cell::F3(r.parallel_secs.unwrap()));
    }
    rows.push(row);
    emit(
        "Table V: accuracy (F) and time (s) on labeled corpora",
        &["method", "IMDB F", "T(s)", "ACM-DBLP F", "T(s)", "Movie F", "T(s)", "Songs F", "T(s)"],
        rows,
    );
    println!(
        "paper shape: DMatch within the top methods everywhere (paper avg F 0.95+);\n\
         single-table baselines lose on the multi-table corpora (Movie, ACM-DBLP).\n"
    );
}

/// Table VI: DMatch accuracy on TPCH and TFACC as Dup varies.
fn table6(scale: f64, workers: usize) {
    let dups = [0.1, 0.2, 0.3, 0.4, 0.5];
    let mut rows = Vec::new();
    for &dup in &dups {
        let tp = tpch_workload(scale, dup);
        let tf = tfacc_workload(scale, dup);
        let (rp, _) = run_dmatch(&tp, workers, true);
        let (rf, _) = run_dmatch(&tf, workers, true);
        rows.push(vec![
            Cell::F2(dup),
            Cell::F3(rp.metrics.f_measure),
            Cell::F3(rf.metrics.f_measure),
        ]);
    }
    emit("Table VI: DMatch accuracy vs Dup", &["Dup", "TPCH F", "TFACC F"], rows);
    println!(
        "paper shape: F stays high (0.85-0.87 on TPCH) and degrades only slightly with Dup.\n"
    );
}

/// Fig 6(a)/(b): accuracy of DMatch vs its ablations and the distributed
/// baselines at Dup = 0.5.
fn fig6_accuracy(scale: f64, workers: usize, tfacc: bool) {
    let w = if tfacc { tfacc_workload(scale, 0.5) } else { tpch_workload(scale, 0.5) };
    let title = if tfacc {
        "Fig 6(b): accuracy on TFACC (Dup = 0.5)"
    } else {
        "Fig 6(a): accuracy on TPCH (Dup = 0.5)"
    };
    let mut rows = Vec::new();
    let (full, _) = run_dmatch(&w, workers, true);
    rows.push(vec![Cell::from("DMatch"), Cell::F3(full.metrics.f_measure)]);
    let c = run_variant(&w, &w.session.collective_only(), workers);
    rows.push(vec![Cell::from("DMatch_C"), Cell::F3(c.metrics.f_measure)]);
    let d = run_variant(&w, &w.session.deep_only(4), workers);
    rows.push(vec![Cell::from("DMatch_D"), Cell::F3(d.metrics.f_measure)]);
    for b in baselines_for(&w) {
        if ["Dedoop-like", "DisDedup-like", "SparkER-like"].contains(&b.name()) {
            let r = run_baseline(&w, b.as_ref());
            rows.push(vec![Cell::Str(b.name().to_string()), Cell::F3(r.metrics.f_measure)]);
        }
    }
    emit(title, &["method", "F"], rows);
    println!("paper shape: DMatch > DMatch_D > DMatch_C; distributed single-table baselines below DMatch.\n");
}

/// Fig 6(c)/(d): ER time vs Dup.
fn fig6_time_vs_dup(scale: f64, workers: usize, tfacc: bool) {
    let dups = [0.1, 0.2, 0.3, 0.4, 0.5];
    let mut dmatch = Vec::new();
    let mut sparker = Vec::new();
    let mut disdedup = Vec::new();
    for &dup in &dups {
        // 8x base size: at the default container scale the Dup range adds
        // only a handful of tuples and the trend drowns in noise.
        let w =
            if tfacc { tfacc_workload(scale * 8.0, dup) } else { tpch_workload(scale * 8.0, dup) };
        let (r, _) = run_dmatch(&w, workers, true);
        dmatch.push(r.parallel_secs.unwrap());
        for b in baselines_for(&w) {
            let secs = || run_baseline(&w, b.as_ref()).wall_secs;
            match b.name() {
                "SparkER-like" => sparker.push(secs()),
                "DisDedup-like" => disdedup.push(secs()),
                _ => {}
            }
        }
    }
    let title = if tfacc {
        "Fig 6(d): time vs Dup on TFACC (n = 16)"
    } else {
        "Fig 6(c): time vs Dup on TPCH (n = 16)"
    };
    let xs: Vec<String> = dups.iter().map(|d| format!("{d}")).collect();
    println!(
        "{}",
        format_series(
            title,
            "Dup",
            &xs,
            &[("DMatch(s)", dmatch), ("SparkER-like(s)", sparker), ("DisDedup-like(s)", disdedup),],
        )
    );
    println!(
        "paper shape: all methods grow with Dup; DMatch stays competitive despite recursion.\n"
    );
}

/// Fig 6(e)/(f): DMatch vs DMatch_noMQO as the predicate count per rule
/// grows.
fn fig6_time_vs_preds(scale: f64, workers: usize, tfacc: bool) {
    let preds: Vec<usize> = if tfacc { vec![4, 5, 6, 7, 8] } else { vec![2, 4, 6, 8, 10] };
    let mut with_mqo = Vec::new();
    let mut without = Vec::new();
    for &p in &preds {
        let (data, _truth, catalog, src, registry) = if tfacc {
            let w = tfacc_workload(scale * 4.0, 0.3);
            (
                w.data,
                w.truth,
                dcer_datagen::tfacc::catalog(),
                dcer_datagen::tfacc::rules_source_predicates(10, p),
                dcer_datagen::tfacc::make_registry(),
            )
        } else {
            let w = tpch_workload(scale * 2.0, 0.3);
            (
                w.data,
                w.truth,
                dcer_datagen::tpch::catalog(),
                dcer_datagen::tpch::rules_source_predicates(10, p),
                dcer_datagen::tpch::make_registry(),
            )
        };
        let rules = parse_rules(&catalog, &src).unwrap();
        let session = dcer_core::DcerSession::new(catalog, rules, registry);
        for (mqo, bucket) in [(true, &mut with_mqo), (false, &mut without)] {
            let mut cfg = dcer_core::DmatchConfig::new(workers);
            cfg.use_mqo = mqo;
            let t0 = Instant::now();
            let report = session.run_parallel(&data, &cfg).unwrap();
            let _ = t0.elapsed();
            bucket.push(report.partition_secs + report.simulated_er_secs);
        }
    }
    let title = if tfacc {
        "Fig 6(f): time vs |phi| on TFACC (n = 16, 10 rules)"
    } else {
        "Fig 6(e): time vs |phi| on TPCH (n = 16, 10 rules)"
    };
    let xs: Vec<String> = preds.iter().map(|p| p.to_string()).collect();
    println!(
        "{}",
        format_series(
            title,
            "|phi|",
            &xs,
            &[("DMatch(s)", with_mqo), ("DMatch_noMQO(s)", without)]
        )
    );
    println!("paper shape: time grows with |phi|; MQO's advantage grows with shared predicates.\n");
}

/// Fig 6(g)/(h): DMatch vs DMatch_noMQO as the rule count grows.
fn fig6_time_vs_rules(scale: f64, workers: usize, tfacc: bool) {
    let counts: Vec<usize> = if tfacc { vec![10, 15, 20, 25, 30] } else { vec![30, 45, 60, 75] };
    let mut with_mqo = Vec::new();
    let mut without = Vec::new();
    for &k in &counts {
        let (data, catalog, src, registry) = if tfacc {
            let w = tfacc_workload(scale, 0.3);
            (
                w.data,
                dcer_datagen::tfacc::catalog(),
                dcer_datagen::tfacc::rules_source_scaled(k),
                dcer_datagen::tfacc::make_registry(),
            )
        } else {
            let w = tpch_workload(scale, 0.3);
            (
                w.data,
                dcer_datagen::tpch::catalog(),
                dcer_datagen::tpch::rules_source_scaled(k),
                dcer_datagen::tpch::make_registry(),
            )
        };
        let rules = parse_rules(&catalog, &src).unwrap();
        let session = dcer_core::DcerSession::new(catalog, rules, registry);
        for (mqo, bucket) in [(true, &mut with_mqo), (false, &mut without)] {
            let mut cfg = dcer_core::DmatchConfig::new(workers);
            cfg.use_mqo = mqo;
            let report = session.run_parallel(&data, &cfg).unwrap();
            bucket.push(report.partition_secs + report.simulated_er_secs);
        }
    }
    let title = if tfacc {
        "Fig 6(h): time vs ||Sigma|| on TFACC (n = 16)"
    } else {
        "Fig 6(g): time vs ||Sigma|| on TPCH (n = 16)"
    };
    let xs: Vec<String> = counts.iter().map(|c| c.to_string()).collect();
    println!(
        "{}",
        format_series(
            title,
            "||Sigma||",
            &xs,
            &[("DMatch(s)", with_mqo), ("DMatch_noMQO(s)", without)]
        )
    );
    println!("paper shape: more rules cost more; MQO sharing grows with the rule count.\n");
}

/// Fig 6(i)/(j): parallel scalability — simulated parallel ER time vs n.
///
/// Uses 8x the base data size and virtual-block factor 2: the paper's `n²`
/// virtual blocks target multi-million-tuple fragments; at container scale
/// their replication overhead would swamp the per-worker compute that the
/// scalability claim (Theorem 7) is about. Partitioning time is excluded,
/// matching the paper ("we only report the ER time").
fn fig6_scalability(scale: f64, tfacc: bool) {
    let ns = [4usize, 8, 16, 32];
    let mut with_mqo = Vec::new();
    let mut without = Vec::new();
    let w = if tfacc { tfacc_workload(scale * 8.0, 0.3) } else { tpch_workload(scale * 8.0, 0.3) };
    for &n in &ns {
        for (mqo, bucket) in [(true, &mut with_mqo), (false, &mut without)] {
            let mut cfg = dcer_core::DmatchConfig::new(n);
            cfg.use_mqo = mqo;
            cfg.virtual_factor = Some(2);
            // Min of 3 runs: single-run makespans at container scale are
            // noisy (tens of milliseconds).
            let best = (0..3)
                .map(|_| w.session.run_parallel(&w.data, &cfg).unwrap().simulated_er_secs)
                .fold(f64::INFINITY, f64::min);
            bucket.push(best);
        }
    }
    let title = if tfacc {
        "Fig 6(j): simulated parallel time vs n on TFACC"
    } else {
        "Fig 6(i): simulated parallel time vs n on TPCH"
    };
    let xs: Vec<String> = ns.iter().map(|n| n.to_string()).collect();
    println!(
        "{}",
        format_series(
            title,
            "n",
            &xs,
            &[("DMatch(s)", with_mqo.clone()), ("DMatch_noMQO(s)", without)]
        )
    );
    let speedup = with_mqo[0] / with_mqo[ns.len() - 1];
    println!(
        "speedup n=4 -> n=32: {speedup:.2}x (paper: 3.56x on TPCH). Parallel scalability\n\
         (Theorem 7): time decreases as workers are added.\n"
    );
}

/// Fig 6(k)/(l): time vs dataset scale factor.
fn fig6_time_vs_scale(scale: f64, workers: usize, tfacc: bool) {
    let factors = [0.05, 0.1, 0.25, 0.5, 1.0];
    let mut with_mqo = Vec::new();
    let mut without = Vec::new();
    let mut sizes = Vec::new();
    for &f in &factors {
        let w = if tfacc {
            tfacc_workload(scale * f * 2.5, 0.3)
        } else {
            tpch_workload(scale * f * 2.5, 0.3)
        };
        sizes.push(w.data.total_tuples());
        let (r, _) = run_dmatch(&w, workers, true);
        with_mqo.push(r.parallel_secs.unwrap());
        let (r, _) = run_dmatch(&w, workers, false);
        without.push(r.parallel_secs.unwrap());
    }
    let title = if tfacc {
        "Fig 6(l): time vs scale on TFACC (n = 16)"
    } else {
        "Fig 6(k): time vs scale factor on TPCH (n = 16)"
    };
    let xs: Vec<String> = factors.iter().zip(&sizes).map(|(f, s)| format!("{f} ({s}t)")).collect();
    println!(
        "{}",
        format_series(title, "SF", &xs, &[("DMatch(s)", with_mqo), ("DMatch_noMQO(s)", without)])
    );
    println!("paper shape: near-linear growth with data size; MQO consistently ahead.\n");
}

/// Exp-2 "Partitioning": HyPart time vs ER time as n varies.
fn partitioning(scale: f64) {
    let w = tpch_workload(scale * 8.0, 0.3);
    let mut rows = Vec::new();
    for n in [4usize, 8, 16, 32] {
        let (_, report) = run_dmatch(&w, n, true);
        // The paper partitions in parallel too (its HyPart time *drops*
        // from 18.19s to 11.49s as n grows); hashing and distribution
        // shard trivially, so we report host partition time / n.
        let par_partition = report.partition_secs / n as f64;
        let frac = par_partition / (par_partition + report.simulated_er_secs);
        rows.push(vec![
            Cell::from(n),
            Cell::F3(par_partition),
            Cell::F3(report.simulated_er_secs),
            Cell::F2(frac * 100.0),
            Cell::F2(report.partition.replication_factor),
            Cell::from(report.partition.hash_computations as i64),
        ]);
    }
    emit(
        "Exp-2: partitioning vs ER time on TPCH",
        &["n", "HyPart(s)", "ER(s)", "partition %", "replication", "hash comps"],
        rows,
    );
    println!("paper shape: ER time dominates; partitioning stays a small fraction (<= ~15%).\n");
}

/// Exp-4 case study: the discovered deep+collective rules and what they
/// prove, including the 3-level recursion anecdote.
fn case_study(scale: f64, workers: usize) {
    let w = tpch_workload(scale, 0.4);
    println!("== Exp-4 case study: TPCH rules (phi_a, phi_b) ==");
    for r in w.session.rules().rules() {
        println!(
            "  {}\n    class {:?}, acyclic {}",
            r.display(w.session.catalog()),
            dcer_mrl::classify(r),
            dcer_mrl::is_acyclic(r)
        );
    }
    let (res, report) = run_dmatch(&w, workers, true);
    println!(
        "\nDMatch on TPCH: F = {:.3}, {} supersteps, {} routed matches",
        res.metrics.f_measure, report.bsp.supersteps, report.bsp.messages
    );
    println!(
        "supersteps > 1 confirm recursion across workers: matches deduced in one round\n\
         unlock rules (phi_b needs customer matches; customers need nation matches) in the next."
    );

    let wb = dblp_workload(scale, 0.4);
    println!("\n== Exp-4 case study: bibliographic rule (phi_c) ==");
    for r in wb.session.rules().rules() {
        println!("  {}", r.display(wb.session.catalog()));
    }
    let (res, _) = run_dmatch(&wb, workers, true);
    println!("DMatch on ACM-DBLP: F = {:.3}", res.metrics.f_measure);
}

/// Dump the complete execution statistics of one DMatch run — BSP exchange
/// counters, per-worker chase counters, batch construction/merge counters
/// and partitioning geometry — as a single JSON record, straight from the
/// `Serialize` impls on the stats structs.
fn stats_dump(scale: f64, workers: usize) {
    use serde_json::{to_value, Map, Value};
    use std::sync::Arc;

    let collector = Arc::new(dcer_obs::InMemoryCollector::new());
    dcer_obs::install(collector.clone());
    let w = tpch_workload(scale, 0.4);
    let (res, report) = run_dmatch(&w, workers, true);
    dcer_obs::uninstall();

    let mut m = Map::new();
    m.insert("experiment", Value::from("stats"));
    m.insert("dataset", Value::from("tpch"));
    m.insert("scale", Value::from(scale));
    m.insert("workers", Value::from(workers));
    m.insert("f_measure", Value::from(res.metrics.f_measure));
    m.insert("bsp", to_value(&report.bsp));
    m.insert("batch", to_value(&report.batch));
    m.insert("partition", to_value(&report.partition));
    m.insert("worker_chase", to_value(&report.worker_stats));
    m.insert("metrics", metrics_value(&collector.metrics()));
    let record = Value::Object(m);
    println!("== Execution statistics (one DMatch run on TPCH) ==");
    println!("{}", serde_json::to_string_pretty(&record).unwrap());
    archive(record);
}

/// Render a metrics snapshot as a flat JSON object: `"name"` or
/// `"name[label]"` keys, counters/gauges as numbers, histograms as summary
/// objects with their non-empty `[lo, hi, count)` buckets.
fn metrics_value(snapshot: &[(String, Option<u32>, dcer_obs::Metric)]) -> serde_json::Value {
    use serde_json::{Map, Value};

    let mut out = Map::new();
    for (name, label, metric) in snapshot {
        let key = match label {
            Some(l) => format!("{name}[{l}]"),
            None => name.clone(),
        };
        let value = match metric {
            dcer_obs::Metric::Counter(v) => Value::from(*v),
            dcer_obs::Metric::Gauge(v) => Value::from(*v),
            dcer_obs::Metric::Histogram(h) => {
                let mut obj = Map::new();
                obj.insert("count", Value::from(h.count()));
                obj.insert("sum", Value::from(h.sum()));
                obj.insert("min", h.min().map_or(Value::Null, Value::from));
                obj.insert("max", h.max().map_or(Value::Null, Value::from));
                obj.insert("mean", h.mean().map_or(Value::Null, Value::from));
                // Bucket-upper-bound estimates from the log2 histogram:
                // each may overshoot the true quantile by up to 2x, never
                // undershoots (see `Histogram::quantile`).
                for (key, q) in [("p50", 0.5), ("p95", 0.95), ("p99", 0.99)] {
                    obj.insert(key, h.quantile(q).map_or(Value::Null, Value::from));
                }
                let buckets: Vec<Value> = h
                    .nonzero_buckets()
                    .into_iter()
                    .map(|(lo, hi, c)| {
                        Value::from(vec![Value::from(lo), Value::from(hi), Value::from(c)])
                    })
                    .collect();
                obj.insert("buckets", Value::from(buckets));
                Value::Object(obj)
            }
        };
        out.insert(key, value);
    }
    Value::Object(out)
}

/// Run DMatch on the bibliographic workload under a live trace collector
/// and export the observability artifacts: `results/trace.json` (Chrome
/// trace-event JSON — load in Perfetto or `about:tracing`) and
/// `results/metrics.json` (the stats record of [`stats_dump`] merged with
/// the flat metrics registry). Self-checks that the trace covers the four
/// pipeline phases so CI can run this as a smoke test.
fn trace_run(scale: f64, workers: usize) {
    use serde_json::{to_value, Map, Value};
    use std::sync::Arc;

    let collector = Arc::new(dcer_obs::InMemoryCollector::new());
    dcer_obs::install(collector.clone());
    let w = dblp_workload(scale, 0.3);
    let (res, report) = run_dmatch(&w, workers, true);
    dcer_obs::uninstall();

    let trace = collector.chrome_trace();
    std::fs::write("results/trace.json", &trace).expect("write results/trace.json");

    let mut m = Map::new();
    m.insert("experiment", Value::from("trace"));
    m.insert("dataset", Value::from("dblp"));
    m.insert("scale", Value::from(scale));
    m.insert("workers", Value::from(workers));
    m.insert("f_measure", Value::from(res.metrics.f_measure));
    m.insert("bsp", to_value(&report.bsp));
    m.insert("batch", to_value(&report.batch));
    m.insert("partition", to_value(&report.partition));
    m.insert("worker_chase", to_value(&report.worker_stats));
    m.insert("metrics", metrics_value(&collector.metrics()));
    let record = Value::Object(m);
    let pretty = serde_json::to_string_pretty(&record).unwrap();
    std::fs::write("results/metrics.json", &pretty).expect("write results/metrics.json");

    let names = collector.span_names();
    for phase in ["partition", "deduce", "exchange", "incdeduce"] {
        assert!(names.contains(&phase), "trace is missing the `{phase}` phase span; got {names:?}");
    }
    let tracks = collector.track_names();
    let worker_tracks = tracks.values().filter(|n| n.starts_with("worker-")).count();
    assert!(worker_tracks > 0, "trace has no per-worker tracks; got {tracks:?}");

    println!("== Trace (one DMatch run on ACM-DBLP) ==");
    println!(
        "spans: {}  instants: {}  tracks: {} ({} worker)  metric series: {}",
        collector.spans().len(),
        collector.instants().len(),
        tracks.len(),
        worker_tracks,
        collector.metrics().len()
    );
    println!("phases: {}", names.join(" "));
    println!(
        "wrote results/trace.json ({} bytes) — open in Perfetto or about:tracing",
        trace.len()
    );
    println!("wrote results/metrics.json ({} bytes)", pretty.len());
}

/// Causal-profile harness: one DMatch run on TPCH with *threaded*
/// executors (real OS threads, real barriers) under a live collector; the
/// pipeline builds a [`dcer_obs::RunProfile`] from the span/flow graph and
/// this writes it to `results/profile.json`, prints the makespan
/// decomposition, per-worker utilization, straggler indices and the top-10
/// critical-path spans, and asserts the two profile invariants CI relies
/// on: the phase decomposition sums to within 5% of the measured wall
/// time, and the critical path explains >= 80% of the span extent.
fn profile_run(scale: f64, workers: usize) {
    use std::sync::Arc;

    let w = tpch_workload(scale, 0.3);
    let cfg = dcer_core::DmatchConfig::new(workers).threaded();
    let collector = Arc::new(dcer_obs::InMemoryCollector::new());
    dcer_obs::install(collector.clone());
    let report = w.session.run_parallel(&w.data, &cfg).unwrap();
    dcer_obs::uninstall();

    let profile = report.profile.as_ref().expect("profile built while collector installed");
    let json = profile.to_json();
    std::fs::write("results/profile.json", &json).expect("write results/profile.json");

    let secs = |ns: u64| ns as f64 / 1e9;
    println!("== Causal profile (one DMatch run on TPCH, n = {workers}, threaded) ==");
    println!(
        "wall {:.3}s  span extent {:.3}s  decomposition sum {:.3}s",
        secs(profile.wall_ns),
        secs(profile.extent_ns),
        secs(profile.decomposition_sum_ns())
    );
    println!("makespan decomposition:");
    for phase in dcer_obs::profile::PHASES {
        let ns = profile.phase_ns.get(&phase).copied().unwrap_or(0);
        if ns > 0 {
            println!(
                "  {:<12} {:>8.3}s  {:>5.1}%",
                phase.name(),
                secs(ns),
                100.0 * ns as f64 / profile.extent_ns.max(1) as f64
            );
        }
    }
    for wp in &profile.workers {
        println!(
            "  {:<12} busy {:.3}s  wait {:.3}s  utilization {:.0}%",
            wp.name,
            secs(wp.busy_ns),
            secs(wp.wait_ns),
            100.0 * wp.utilization()
        );
    }
    for sp in &profile.steps {
        println!(
            "  step {:<3} max {:.3}s  mean {:.3}s  straggler index {:.2}",
            sp.step,
            secs(sp.max_busy_ns),
            secs(sp.mean_busy_ns),
            sp.straggler_index()
        );
    }
    let mut top: Vec<_> = profile.critical_path.nodes.iter().collect();
    top.sort_by_key(|n| std::cmp::Reverse(n.dur_ns));
    println!(
        "critical path: {:.3}s over {} spans ({:.0}% of extent); top {}:",
        secs(profile.critical_path.total_ns),
        profile.critical_path.nodes.len(),
        100.0 * profile.critical_coverage(),
        top.len().min(10)
    );
    for n in top.iter().take(10) {
        let arg = n.arg.map_or(String::new(), |(k, v)| format!("  {k}={v}"));
        println!(
            "  {:<18} track {:<3} {:<12} {:>8.3}s{arg}",
            n.name,
            n.track.0,
            n.phase.name(),
            secs(n.dur_ns)
        );
    }
    println!("wrote results/profile.json ({} bytes)", json.len());

    let wall = profile.wall_ns.max(1) as f64;
    let deviation = (profile.decomposition_sum_ns() as f64 - wall).abs() / wall;
    assert!(
        deviation <= 0.05,
        "decomposition ({:.3}s) deviates {:.1}% from wall ({:.3}s); budget is 5%",
        secs(profile.decomposition_sum_ns()),
        100.0 * deviation,
        secs(profile.wall_ns)
    );
    let coverage = profile.critical_coverage();
    assert!(
        coverage >= 0.80,
        "critical path explains only {:.1}% of the span extent; floor is 80%",
        100.0 * coverage
    );
}

/// Chaos harness: run DMatch on TPCH under injected faults (explicit
/// `--fault-plan`, or a seeded matrix of random plans) with superstep
/// checkpointing on, and verify every cell recovers to exactly the
/// fault-free transitive closure (DESIGN.md §11).
fn chaos(scale: f64, workers: usize, plan_arg: Option<&str>, seed: u64, cells: usize) {
    use dcer_bsp::{FaultConfig, FaultPlan};
    use serde_json::{to_value, Map, Value};

    let w = tpch_workload(scale, 0.3);
    let baseline = w.session.run_parallel(&w.data, &dcer_core::DmatchConfig::new(workers)).unwrap();
    let mut expected_matches = baseline.outcome.matches.clone();
    let expected = expected_matches.clusters();
    let steps = baseline.bsp.supersteps.max(1) as u64;

    let plans: Vec<FaultPlan> = match plan_arg {
        Some(src) => {
            vec![FaultPlan::parse(src).unwrap_or_else(|e| panic!("bad --fault-plan: {e}"))]
        }
        None => (0..cells).map(|i| FaultPlan::random(seed + i as u64, workers, steps, 2)).collect(),
    };

    println!(
        "== Chaos: DMatch on TPCH under fault injection (n = {workers}, {steps} fault-free supersteps) =="
    );
    let mut rows = Vec::new();
    for plan in &plans {
        let cfg =
            dcer_core::DmatchConfig::new(workers).with_faults(FaultConfig::with_plan(plan.clone()));
        let mut report = w.session.run_parallel(&w.data, &cfg).unwrap();
        let recovered = report.outcome.matches.clusters();
        assert_eq!(recovered, expected, "plan `{plan}` diverged from the fault-free closure");
        let r = report.bsp.recovery;
        rows.push(vec![
            Cell::Str(plan.to_string()),
            Cell::from(r.crashes as i64),
            Cell::from(r.recoveries as i64),
            Cell::from(r.retries as i64),
            Cell::from(r.replayed_batches as i64),
            Cell::from(r.checkpoints as i64),
            Cell::from(report.fault_reruns as i64),
        ]);
        let mut m = Map::new();
        m.insert("experiment", Value::from("chaos"));
        m.insert("dataset", Value::from("tpch"));
        m.insert("workers", Value::from(workers));
        m.insert("plan", Value::from(plan.to_string()));
        m.insert("recovery", to_value(&r));
        m.insert("fault_reruns", Value::from(report.fault_reruns as i64));
        m.insert("closure_matches_baseline", Value::from(true));
        archive(Value::Object(m));
    }
    emit(
        "Chaos: recovery parity under injected faults",
        &["plan", "crashes", "recoveries", "retries", "replayed", "ckpts", "reruns"],
        rows,
    );
    println!("every cell recovered to the fault-free transitive closure.\n");
}

/// Incremental maintenance demo: keep a resident [`dcer_core::UpdateSession`]
/// over TPCH and feed it balanced ~1% CDC churn batches (deletes of live
/// tuples — some deliberately repeated across batches — plus inserts cloning
/// existing rows as fresh duplicates). Prints the per-batch delta ledger and
/// verifies the final closure against a from-scratch DMatch run over the
/// same final dataset (DESIGN.md §12).
fn update_demo(scale: f64, workers: usize) {
    use serde_json::{Map, Value};

    let w = tpch_workload(scale, 0.3);
    let cfg = dcer_core::DmatchConfig::new(workers);
    let t0 = Instant::now();
    let mut session = w.session.update_session(&w.data, &cfg).unwrap();
    let bootstrap_secs = t0.elapsed().as_secs_f64();

    // Churn the matching target relation: deletes there retract match
    // facts through the DRed cascade, and inserted row clones arrive as
    // fresh duplicates the rederive exchange must re-match.
    let rel = w.target_rel;
    let base: Vec<_> = w.data.relation(rel).tuples().iter().map(|t| t.tid).collect();
    let churn = (base.len() / 100).max(1);
    println!(
        "== Incremental maintenance: resident DMatch on TPCH (n = {workers}, churned relation {rel} has {} rows, ~{churn} deletes + {churn} inserts per batch) ==",
        base.len()
    );
    println!("bootstrap (partition + fleet + initial fixpoint): {bootstrap_secs:.2}s");

    let mut rows = Vec::new();
    let donor_row = |b: usize, i: usize| (b * churn + i) * 13 % base.len();
    for b in 0..4usize {
        let mut batch = dcer_relation::UpdateBatch::new();
        for i in 0..churn {
            // Batch 0 kills strided victims; later batches kill the rows
            // the previous batch cloned, so their freshly deduced matches
            // have to be retracted again. Revisited victims are already
            // dead — deletes of tombstoned tuples must be tolerated no-ops.
            let victim = if b == 0 { (i * 7) % base.len() } else { donor_row(b - 1, i) };
            batch.delete(base[victim]);
            let donor = &w.data.relation(rel).tuples()[donor_row(b, i)];
            batch.insert(rel, donor.values.to_vec());
        }
        let t = Instant::now();
        let report = session.run_update(&batch).unwrap();
        let secs = t.elapsed().as_secs_f64();
        rows.push(vec![
            Cell::from(b as i64),
            Cell::from(report.inserted.len() as i64),
            Cell::from(report.deleted.len() as i64),
            Cell::from(report.retracted.len() as i64),
            Cell::from(report.deduced.len() as i64),
            Cell::from(report.over_deleted as i64),
            Cell::from(report.notice_rounds as i64),
            Cell::Str(if report.repartitioned { "yes".into() } else { "no".into() }),
            Cell::F2(secs),
        ]);
        let mut m = Map::new();
        m.insert("experiment", Value::from("update"));
        m.insert("dataset", Value::from("tpch"));
        m.insert("workers", Value::from(workers));
        m.insert("batch", Value::from(b as u64));
        m.insert("inserted", Value::from(report.inserted.len() as u64));
        m.insert("deleted", Value::from(report.deleted.len() as u64));
        m.insert("retracted", Value::from(report.retracted.len() as u64));
        m.insert("deduced", Value::from(report.deduced.len() as u64));
        m.insert("over_deleted", Value::from(report.over_deleted));
        m.insert("notice_rounds", Value::from(report.notice_rounds as u64));
        m.insert("repartitioned", Value::from(report.repartitioned));
        m.insert("seconds", Value::from(secs));
        archive(Value::Object(m));
    }
    emit(
        "Incremental maintenance: per-batch CDC deltas",
        &["batch", "ins", "del", "retracted", "deduced", "overdel", "notice_rds", "repart", "time"],
        rows,
    );

    // The invariant the whole subsystem is built around: the resident
    // closure equals a from-scratch run over the final dataset.
    let mut resident = session.outcome();
    let mut scratch = w.session.run_parallel(session.dataset(), &cfg).unwrap();
    assert_eq!(
        resident.matches.clusters(),
        scratch.outcome.matches.clusters(),
        "resident closure diverged from from-scratch DMatch"
    );
    println!(
        "resident closure verified against from-scratch DMatch ({} clusters, {} updates, {} drift re-partitions).\n",
        resident.matches.clusters().len(),
        session.updates_applied(),
        session.repartitions()
    );
}

/// Resident serving smoke: boot a [`dcer_core::ResidentResolver`] over TPCH,
/// race concurrent reader threads (lookups + explains against lock-free
/// snapshots) against a writer admitting CDC churn batches, and after every
/// admit verify the published snapshot equals a from-scratch closure of the
/// data seen so far. Reader tail latency is recorded into a
/// [`dcer_obs::Histogram`] and its p99 asserted bounded — readers must not
/// block behind an in-flight admit (DESIGN.md §16).
fn serve_demo(scale: f64, workers: usize) {
    use serde_json::{Map, Value};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, Mutex};

    const READERS: usize = 4;
    const BATCHES: usize = 4;
    /// Reader p99 bound, generous against CI noise: a lookup is a hash
    /// probe behind an epoch load and must stay far under an admit
    /// (which reruns partial fixpoints).
    const P99_BOUND_NS: u64 = 100_000_000;

    let w = tpch_workload(scale, 0.3);
    let cfg = dcer_core::DmatchConfig::new(workers);
    let t0 = Instant::now();
    let resolver = Arc::new(w.session.resident(&w.data, &cfg).unwrap());
    let boot_secs = t0.elapsed().as_secs_f64();
    println!(
        "== Resident serving: {READERS} readers vs 1 writer on TPCH (n = {workers}, {} live tuples, boot {boot_secs:.2}s) ==",
        w.data.total_live()
    );

    // Readers: hammer cluster_of + explain on snapshots until stopped,
    // recording per-read latency. They only ever touch the lock-free
    // snapshot path — never the writer's channel.
    let stop = Arc::new(AtomicBool::new(false));
    let lat = Arc::new(Mutex::new(dcer_obs::Histogram::new()));
    let probe: Vec<_> = w.data.relation(w.target_rel).tuples().iter().map(|t| t.tid).collect();
    let readers: Vec<_> = (0..READERS)
        .map(|r| {
            let resolver = Arc::clone(&resolver);
            let stop = Arc::clone(&stop);
            let lat = Arc::clone(&lat);
            let probe = probe.clone();
            std::thread::spawn(move || {
                let mut local = dcer_obs::Histogram::new();
                let mut i = r; // stagger the probe sequence per reader
                while !stop.load(Ordering::Relaxed) {
                    let tid = probe[i % probe.len()];
                    let t = Instant::now();
                    let snap = resolver.snapshot();
                    let members = snap.cluster_of(tid).map(|c| snap.members(c).len());
                    if let Some(2..) = members {
                        let c = snap.cluster_of(tid).unwrap();
                        let peer = snap.members(c)[0];
                        let _ = snap.explain(peer, tid);
                    }
                    local.record(t.elapsed().as_nanos() as u64);
                    i += 1;
                }
                lat.lock().unwrap().merge(&local);
            })
        })
        .collect();

    // Writer: the same churn recipe as `update_demo` — delete strided
    // victims (revisiting some), re-insert clones of existing rows — but
    // through the serving `admit` path. After every admit the *published
    // snapshot* is checked against a from-scratch sequential closure of
    // the shadow dataset that applied the same batches.
    let rel = w.target_rel;
    let base = probe;
    let churn = (base.len() / 100).max(1);
    let mut shadow = w.data.clone();
    let mut rows = Vec::new();
    let donor_row = |b: usize, i: usize| (b * churn + i) * 13 % base.len();
    for b in 0..BATCHES {
        let mut batch = dcer_relation::UpdateBatch::new();
        for i in 0..churn {
            let victim = if b == 0 { (i * 7) % base.len() } else { donor_row(b - 1, i) };
            batch.delete(base[victim]);
            let donor = &w.data.relation(rel).tuples()[donor_row(b, i)];
            batch.insert(rel, donor.values.to_vec());
        }
        shadow.apply_update(&batch).unwrap();
        let t = Instant::now();
        let report = resolver.admit(batch).unwrap();
        let admit_secs = t.elapsed().as_secs_f64();

        let snap = resolver.snapshot();
        assert_eq!(snap.epoch(), report.epoch, "stale snapshot after admit");
        let mut scratch = w.session.run_sequential(&shadow);
        assert_eq!(
            snap.clusters(),
            scratch.matches.clusters().as_slice(),
            "snapshot at epoch {} diverged from the from-scratch closure",
            snap.epoch()
        );
        rows.push(vec![
            Cell::from(b as i64),
            Cell::from(report.epoch as i64),
            Cell::from(report.inserted.len() as i64),
            Cell::from(report.deleted.len() as i64),
            Cell::from(report.retracted as i64),
            Cell::from(report.deduced as i64),
            Cell::Str(if report.repartitioned { "yes".into() } else { "no".into() }),
            Cell::from(snap.clusters().len() as i64),
            Cell::F2(admit_secs),
        ]);
    }

    stop.store(true, Ordering::Relaxed);
    for h in readers {
        h.join().unwrap();
    }
    let lat = lat.lock().unwrap();
    let (p50, p99) = (lat.quantile(0.50).unwrap(), lat.quantile(0.99).unwrap());
    emit(
        "Resident serving: admits vs concurrent snapshot readers",
        &["batch", "epoch", "ins", "del", "retracted", "deduced", "repart", "clusters", "admit_s"],
        rows,
    );
    println!(
        "reader latency over {} reads: p50 {}ns, p99 {}ns (bound {}ns)",
        lat.count(),
        p50,
        p99,
        P99_BOUND_NS
    );
    assert!(
        p99 <= P99_BOUND_NS,
        "reader p99 {p99}ns exceeds {P99_BOUND_NS}ns — readers are blocking on the writer"
    );

    let mut m = Map::new();
    m.insert("experiment", Value::from("serve"));
    m.insert("dataset", Value::from("tpch"));
    m.insert("workers", Value::from(workers));
    m.insert("readers", Value::from(READERS));
    m.insert("batches", Value::from(BATCHES));
    m.insert("reads", Value::from(lat.count()));
    m.insert("read_p50_ns", Value::from(p50));
    m.insert("read_p99_ns", Value::from(p99));
    m.insert("final_epoch", Value::from(resolver.snapshot().epoch()));
    archive(Value::Object(m));
    println!(
        "all {BATCHES} snapshots verified against from-scratch closures; readers stayed lock-free.\n"
    );
}

fn main() {
    let args = parse_args();
    let _ = std::fs::create_dir_all("results");
    let t0 = Instant::now();
    let mut ran = String::new();
    let run = |name: &str| -> bool { args.command == "all" || args.command == name };

    if run("table5") {
        table5(args.scale, args.workers);
        let _ = write!(ran, "table5 ");
    }
    if run("table6") {
        table6(args.scale, args.workers);
        let _ = write!(ran, "table6 ");
    }
    if run("fig6a") {
        fig6_accuracy(args.scale, args.workers, false);
        let _ = write!(ran, "fig6a ");
    }
    if run("fig6b") {
        fig6_accuracy(args.scale, args.workers, true);
        let _ = write!(ran, "fig6b ");
    }
    if run("fig6c") {
        fig6_time_vs_dup(args.scale, args.workers, false);
        let _ = write!(ran, "fig6c ");
    }
    if run("fig6d") {
        fig6_time_vs_dup(args.scale, args.workers, true);
        let _ = write!(ran, "fig6d ");
    }
    if run("fig6e") {
        fig6_time_vs_preds(args.scale, args.workers, false);
        let _ = write!(ran, "fig6e ");
    }
    if run("fig6f") {
        fig6_time_vs_preds(args.scale, args.workers, true);
        let _ = write!(ran, "fig6f ");
    }
    if run("fig6g") {
        fig6_time_vs_rules(args.scale, args.workers, false);
        let _ = write!(ran, "fig6g ");
    }
    if run("fig6h") {
        fig6_time_vs_rules(args.scale, args.workers, true);
        let _ = write!(ran, "fig6h ");
    }
    if run("fig6i") {
        fig6_scalability(args.scale, false);
        let _ = write!(ran, "fig6i ");
    }
    if run("fig6j") {
        fig6_scalability(args.scale, true);
        let _ = write!(ran, "fig6j ");
    }
    if run("fig6k") {
        fig6_time_vs_scale(args.scale, args.workers, false);
        let _ = write!(ran, "fig6k ");
    }
    if run("fig6l") {
        fig6_time_vs_scale(args.scale, args.workers, true);
        let _ = write!(ran, "fig6l ");
    }
    if run("partitioning") {
        partitioning(args.scale);
        let _ = write!(ran, "partitioning ");
    }
    if run("case_study") {
        case_study(args.scale, args.workers);
        let _ = write!(ran, "case_study ");
    }
    if run("stats") {
        stats_dump(args.scale, args.workers);
        let _ = write!(ran, "stats ");
    }
    if run("trace") {
        trace_run(args.scale, args.workers);
        let _ = write!(ran, "trace ");
    }
    // Not part of `all`: the profile harness re-runs work `trace` already
    // covers (CI runs it as the `profile-smoke` job).
    if args.command == "profile" {
        profile_run(args.scale, args.workers);
        let _ = write!(ran, "profile ");
    }
    // Deliberately not part of `all`: fault injection is its own harness
    // (CI runs it as the `chaos-smoke` job).
    if args.command == "chaos" {
        chaos(
            args.scale,
            args.workers,
            args.fault_plan.as_deref(),
            args.fault_seed,
            args.fault_cells,
        );
        let _ = write!(ran, "chaos ");
    }
    // Also not part of `all`: the incremental-maintenance demo is a
    // separate harness over the CDC update path (DESIGN.md §12).
    if args.command == "update" {
        update_demo(args.scale, args.workers);
        let _ = write!(ran, "update ");
    }
    // Also not part of `all`: the serving smoke races real reader threads
    // against the admit path (CI runs it as the `serve-smoke` job).
    if args.command == "serve" {
        serve_demo(args.scale, args.workers);
        let _ = write!(ran, "serve ");
    }
    if ran.is_empty() {
        eprintln!(
            "unknown experiment `{}`; available: table5 table6 fig6a..fig6l partitioning case_study stats trace profile chaos update serve all",
            args.command
        );
        std::process::exit(2);
    }
    eprintln!("\n[{ran}] completed in {:.1}s", t0.elapsed().as_secs_f64());
}
