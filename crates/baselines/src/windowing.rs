//! Sorted-neighborhood windowing (Hernández & Stolfo's merge/purge \[39\]):
//! sort tuples by a concatenated key, slide a window of size `w`, compare
//! only tuples within the same window.

use dcer_relation::{AttrId, Dataset, RelId};

/// The classic windowing candidate generator.
#[derive(Debug, Clone)]
pub struct SortedNeighborhood {
    /// Attributes concatenated into the sort key, in priority order.
    pub key_attrs: Vec<AttrId>,
    /// Window size `w ≥ 2`.
    pub window: usize,
}

impl SortedNeighborhood {
    /// Construct with a key and window size.
    pub fn new(key_attrs: Vec<AttrId>, window: usize) -> SortedNeighborhood {
        assert!(window >= 2);
        assert!(!key_attrs.is_empty());
        SortedNeighborhood { key_attrs, window }
    }

    /// Candidate row pairs (`a < b` by row index) within the sliding window.
    pub fn candidate_pairs(&self, dataset: &Dataset, rel: RelId) -> Vec<(u32, u32)> {
        let tuples = dataset.relation(rel).tuples();
        let mut order: Vec<u32> = (0..tuples.len() as u32).collect();
        order.sort_by_key(|&i| {
            self.key_attrs
                .iter()
                .map(|&a| tuples[i as usize].get(a).to_text().to_lowercase())
                .collect::<Vec<_>>()
                .join("\u{1}")
        });
        let mut pairs = std::collections::HashSet::new();
        for w in 0..order.len() {
            for k in 1..self.window.min(order.len() - w) {
                let (a, b) = (order[w], order[w + k]);
                pairs.insert((a.min(b), a.max(b)));
            }
        }
        let mut out: Vec<(u32, u32)> = pairs.into_iter().collect();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcer_relation::{Catalog, RelationSchema, ValueType};
    use std::sync::Arc;

    fn dataset(names: &[&str]) -> Dataset {
        let cat = Arc::new(
            Catalog::from_schemas(vec![RelationSchema::of("R", &[("name", ValueType::Str)])])
                .unwrap(),
        );
        let mut d = Dataset::new(cat);
        for n in names {
            d.insert(0, vec![(*n).into()]).unwrap();
        }
        d
    }

    #[test]
    fn adjacent_sorted_names_become_candidates() {
        // After sorting: "F. Smith"(1), "Ford Smith"(0), "Tony Brown"(2).
        let d = dataset(&["Ford Smith", "F. Smith", "Tony Brown"]);
        let sn = SortedNeighborhood::new(vec![0], 2);
        let pairs = sn.candidate_pairs(&d, 0);
        assert!(pairs.contains(&(0, 1)), "{pairs:?}");
        assert!(!pairs.contains(&(1, 2)), "window 2 skips distance-2 neighbors");
    }

    #[test]
    fn window_size_controls_pair_count() {
        let d = dataset(&["a", "b", "c", "d", "e"]);
        let small = SortedNeighborhood::new(vec![0], 2).candidate_pairs(&d, 0).len();
        let large = SortedNeighborhood::new(vec![0], 4).candidate_pairs(&d, 0).len();
        assert_eq!(small, 4);
        assert_eq!(large, 4 + 3 + 2); // distances 1..3
    }

    #[test]
    fn full_window_is_all_pairs() {
        let d = dataset(&["c", "a", "b"]);
        let sn = SortedNeighborhood::new(vec![0], 3);
        assert_eq!(sn.candidate_pairs(&d, 0).len(), 3);
    }

    #[test]
    fn empty_relation_yields_nothing() {
        let d = dataset(&[]);
        let sn = SortedNeighborhood::new(vec![0], 3);
        assert!(sn.candidate_pairs(&d, 0).is_empty());
    }
}
