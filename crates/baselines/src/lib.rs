//! Baseline entity-resolution methods (Table V of the paper).
//!
//! The paper compares `DMatch` against eight external systems. Those are
//! C++/Java/Spark codebases; this crate implements *algorithmic analogues*
//! — each struct implements the published core algorithm of its system at
//! library scale, documented per type (see `DESIGN.md` §5):
//!
//! | paper baseline | here | core algorithm |
//! |---|---|---|
//! | Dedoop \[45\] | [`DedoopLike`] | blocking keys + weighted-average similarity |
//! | DisDedup \[22\] | [`DisDedupLike`] | same comparisons, triangle-distributed over `w` workers |
//! | SparkER \[35\] | [`SparkErLike`] | schema-agnostic token blocking + BLAST-style meta-blocking |
//! | JedAI \[53\] | [`JedAiLike`] | token blocking + non-learning profile similarity |
//! | DeepER \[25\] | [`DeepErLike`] | MinHash-LSH blocking + trained pair classifier |
//! | Ditto \[48\] / DeepMatcher \[43\] | [`PairwiseMlLike`] | trained classifier over candidate pairs |
//! | ERBlox \[12\] | [`ErBloxLike`] | MD-style blocking keys + ML classification inside blocks |
//! | windowing \[39\] | [`SortedNeighborhood`] | sort + sliding window |
//!
//! All baselines are **single-table** methods — exactly the limitation the
//! paper exploits: none of them can use cross-table evidence or recursion,
//! so they miss the relational-only duplicates that `DMatch` proves.

pub mod blocking;
pub mod matchers;
pub mod scoring;
pub mod windowing;

pub use blocking::{meta_blocking, minhash_lsh_blocks, standard_blocks, token_blocks};
pub use matchers::{
    DedoopLike, DeepErLike, DisDedupLike, ErBloxLike, JedAiLike, Matcher, MatcherResult,
    PairwiseMlLike, SparkErLike,
};
pub use scoring::{AttrSim, PairScorer, SimKind, WeightedScorer};
pub use windowing::SortedNeighborhood;
