//! Pairwise similarity scoring for baseline matchers.

use dcer_relation::{AttrId, Tuple};
use dcer_similarity::{
    jaccard_tokens, jaro_winkler, levenshtein_similarity, monge_elkan, ngram_cosine,
};

/// Which similarity function to apply to an attribute pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimKind {
    /// 1 if equal non-null text, else 0.
    Exact,
    /// Normalized Levenshtein.
    Levenshtein,
    /// Jaro-Winkler (prefix weight 0.1).
    JaroWinkler,
    /// Character-3-gram cosine.
    NgramCosine,
    /// Symmetric Monge-Elkan.
    MongeElkan,
    /// Word-token Jaccard.
    TokenJaccard,
}

impl SimKind {
    /// Apply to two texts.
    pub fn apply(self, a: &str, b: &str) -> f64 {
        match self {
            SimKind::Exact => f64::from(!a.is_empty() && a == b),
            SimKind::Levenshtein => levenshtein_similarity(a, b),
            SimKind::JaroWinkler => jaro_winkler(a, b, 0.1),
            SimKind::NgramCosine => ngram_cosine(a, b, 3),
            SimKind::MongeElkan => monge_elkan(a, b),
            SimKind::TokenJaccard => jaccard_tokens(a, b),
        }
    }
}

/// One attribute comparison: attribute, similarity function, weight.
#[derive(Debug, Clone, Copy)]
pub struct AttrSim {
    /// Attribute id within the target relation.
    pub attr: AttrId,
    /// Similarity function.
    pub kind: SimKind,
    /// Relative weight (normalized internally).
    pub weight: f64,
}

impl AttrSim {
    /// Construct.
    pub fn new(attr: AttrId, kind: SimKind, weight: f64) -> AttrSim {
        AttrSim { attr, kind, weight }
    }
}

/// Scores a tuple pair in `[0, 1]`.
pub trait PairScorer: Send + Sync {
    /// Similarity of the pair.
    fn score(&self, a: &Tuple, b: &Tuple) -> f64;
}

/// Weighted average of per-attribute similarities (Dedoop's "weight
/// average matching"). Null attributes contribute score 0 at full weight —
/// missing evidence is not a match.
#[derive(Debug, Clone)]
pub struct WeightedScorer {
    sims: Vec<AttrSim>,
    total_weight: f64,
}

impl WeightedScorer {
    /// Build from attribute comparisons; weights are normalized.
    pub fn new(sims: Vec<AttrSim>) -> WeightedScorer {
        assert!(!sims.is_empty(), "scorer needs at least one attribute");
        let total_weight: f64 = sims.iter().map(|s| s.weight).sum();
        assert!(total_weight > 0.0, "weights must be positive");
        WeightedScorer { sims, total_weight }
    }

    /// Uniform weights over attributes with a single similarity kind.
    pub fn uniform(attrs: &[AttrId], kind: SimKind) -> WeightedScorer {
        WeightedScorer::new(attrs.iter().map(|&a| AttrSim::new(a, kind, 1.0)).collect())
    }
}

impl PairScorer for WeightedScorer {
    fn score(&self, a: &Tuple, b: &Tuple) -> f64 {
        let mut acc = 0.0;
        for s in &self.sims {
            let (va, vb) = (a.get(s.attr), b.get(s.attr));
            if va.is_null() || vb.is_null() {
                continue;
            }
            acc += s.weight * s.kind.apply(&va.to_text(), &vb.to_text());
        }
        acc / self.total_weight
    }
}

/// Adapter: any registered ML model as a scorer over a fixed attribute
/// vector (used by the DeepER / Ditto analogues).
pub struct MlScorer {
    model: std::sync::Arc<dyn dcer_ml::MlModel>,
    attrs: Vec<AttrId>,
}

impl MlScorer {
    /// Score pairs with `model` applied to `attrs` of both tuples.
    pub fn new(model: std::sync::Arc<dyn dcer_ml::MlModel>, attrs: Vec<AttrId>) -> MlScorer {
        MlScorer { model, attrs }
    }
}

impl PairScorer for MlScorer {
    fn score(&self, a: &Tuple, b: &Tuple) -> f64 {
        let va: Vec<_> = self.attrs.iter().map(|&x| a.get(x).clone()).collect();
        let vb: Vec<_> = self.attrs.iter().map(|&x| b.get(x).clone()).collect();
        self.model.probability(&va, &vb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcer_relation::{Tid, Value};

    fn tup(row: u32, vals: &[&str]) -> Tuple {
        Tuple::new(
            Tid::new(0, row),
            vals.iter().map(|s| if s.is_empty() { Value::Null } else { Value::str(*s) }).collect(),
        )
    }

    #[test]
    fn weighted_scorer_averages() {
        let s = WeightedScorer::new(vec![
            AttrSim::new(0, SimKind::Exact, 1.0),
            AttrSim::new(1, SimKind::Exact, 3.0),
        ]);
        let a = tup(0, &["x", "y"]);
        let b = tup(1, &["x", "z"]);
        assert!((s.score(&a, &b) - 0.25).abs() < 1e-12);
        assert!((s.score(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nulls_contribute_zero() {
        let s = WeightedScorer::uniform(&[0, 1], SimKind::Exact);
        let a = tup(0, &["x", ""]);
        let b = tup(1, &["x", ""]);
        assert!((s.score(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn kinds_are_ordered_sensibly_on_typos() {
        for kind in [
            SimKind::Levenshtein,
            SimKind::JaroWinkler,
            SimKind::NgramCosine,
            SimKind::MongeElkan,
            SimKind::TokenJaccard,
        ] {
            let close = kind.apply("thinkpad x1 carbon", "thinkpad x1 crbon");
            let far = kind.apply("thinkpad x1 carbon", "qq zz pp");
            assert!(close > far, "{kind:?}");
        }
        assert_eq!(SimKind::Exact.apply("", ""), 0.0, "empty is not a match");
    }

    #[test]
    #[should_panic(expected = "at least one attribute")]
    fn empty_scorer_panics() {
        let _ = WeightedScorer::new(vec![]);
    }
}
