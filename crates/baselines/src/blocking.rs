//! Blocking strategies: standard key blocking, schema-agnostic token
//! blocking, BLAST-style meta-blocking, and MinHash-LSH blocking.

use dcer_relation::{AttrId, Dataset, RelId};
use dcer_similarity::tokenize;
use std::collections::HashMap;

/// Standard blocking: rows grouped by the exact (non-null) value of a key
/// attribute. Returns the blocks (row-index lists).
pub fn standard_blocks(dataset: &Dataset, rel: RelId, key: AttrId) -> Vec<Vec<u32>> {
    let mut map: HashMap<String, Vec<u32>> = HashMap::new();
    for (i, t) in dataset.relation(rel).tuples().iter().enumerate() {
        let v = t.get(key);
        if !v.is_null() {
            map.entry(v.to_text()).or_default().push(i as u32);
        }
    }
    let mut blocks: Vec<Vec<u32>> = map.into_values().filter(|b| b.len() > 1).collect();
    blocks.sort();
    blocks
}

/// Schema-agnostic token blocking (JedAI / SparkER): every token of every
/// listed attribute spawns a block. Blocks larger than `max_block` are
/// discarded (standard block purging).
pub fn token_blocks(
    dataset: &Dataset,
    rel: RelId,
    attrs: &[AttrId],
    max_block: usize,
) -> Vec<Vec<u32>> {
    let mut map: HashMap<String, Vec<u32>> = HashMap::new();
    for (i, t) in dataset.relation(rel).tuples().iter().enumerate() {
        let mut seen = std::collections::HashSet::new();
        for &a in attrs {
            for tok in tokenize(&t.get(a).to_text()) {
                if seen.insert(tok.clone()) {
                    map.entry(tok).or_default().push(i as u32);
                }
            }
        }
    }
    let mut blocks: Vec<Vec<u32>> =
        map.into_values().filter(|b| b.len() > 1 && b.len() <= max_block).collect();
    blocks.sort();
    blocks
}

/// BLAST-style meta-blocking: weight every candidate pair by its number of
/// common blocks (CBS weighting) and keep pairs whose weight is at least
/// `threshold_frac` of the maximum weight. Returns candidate pairs (row
/// indices, `a < b`).
pub fn meta_blocking(blocks: &[Vec<u32>], threshold_frac: f64) -> Vec<(u32, u32)> {
    let mut weights: HashMap<(u32, u32), u32> = HashMap::new();
    for b in blocks {
        for i in 0..b.len() {
            for j in i + 1..b.len() {
                let key = (b[i].min(b[j]), b[i].max(b[j]));
                *weights.entry(key).or_insert(0) += 1;
            }
        }
    }
    let max_w = weights.values().copied().max().unwrap_or(0) as f64;
    if max_w == 0.0 {
        return Vec::new();
    }
    let cutoff = threshold_frac * max_w;
    let mut pairs: Vec<(u32, u32)> =
        weights.into_iter().filter(|&(_, w)| w as f64 >= cutoff).map(|(p, _)| p).collect();
    pairs.sort_unstable();
    pairs
}

/// All within-block pairs, deduplicated (`a < b`).
pub fn block_pairs(blocks: &[Vec<u32>]) -> Vec<(u32, u32)> {
    let mut set = std::collections::HashSet::new();
    for b in blocks {
        for i in 0..b.len() {
            for j in i + 1..b.len() {
                set.insert((b[i].min(b[j]), b[i].max(b[j])));
            }
        }
    }
    let mut pairs: Vec<(u32, u32)> = set.into_iter().collect();
    pairs.sort_unstable();
    pairs
}

/// MinHash-LSH blocking over the token sets of the given attributes (the
/// LSH step DeepER uses before classification): `bands` bands of `rows_per_band`
/// MinHash values each; tuples agreeing on any band share a block.
pub fn minhash_lsh_blocks(
    dataset: &Dataset,
    rel: RelId,
    attrs: &[AttrId],
    bands: usize,
    rows_per_band: usize,
) -> Vec<Vec<u32>> {
    fn hash_token(seed: u64, tok: &str) -> u64 {
        let mut h = 0xcbf29ce484222325u64 ^ seed.wrapping_mul(0x9e3779b97f4a7c15);
        for b in tok.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }
    let num_hashes = bands * rows_per_band;
    let mut map: HashMap<(usize, Vec<u64>), Vec<u32>> = HashMap::new();
    for (i, t) in dataset.relation(rel).tuples().iter().enumerate() {
        let mut tokens = Vec::new();
        for &a in attrs {
            tokens.extend(tokenize(&t.get(a).to_text()));
        }
        if tokens.is_empty() {
            continue;
        }
        let signature: Vec<u64> = (0..num_hashes)
            .map(|h| tokens.iter().map(|tok| hash_token(h as u64, tok)).min().unwrap())
            .collect();
        for band in 0..bands {
            let key = signature[band * rows_per_band..(band + 1) * rows_per_band].to_vec();
            map.entry((band, key)).or_default().push(i as u32);
        }
    }
    let mut blocks: Vec<Vec<u32>> = map.into_values().filter(|b| b.len() > 1).collect();
    blocks.sort();
    blocks
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcer_relation::{Catalog, RelationSchema, Value, ValueType};
    use std::sync::Arc;

    fn dataset(rows: &[(&str, &str)]) -> Dataset {
        let cat = Arc::new(
            Catalog::from_schemas(vec![RelationSchema::of(
                "R",
                &[("k", ValueType::Str), ("text", ValueType::Str)],
            )])
            .unwrap(),
        );
        let mut d = Dataset::new(cat);
        for (k, text) in rows {
            let kv = if k.is_empty() { Value::Null } else { Value::str(*k) };
            d.insert(0, vec![kv, Value::str(*text)]).unwrap();
        }
        d
    }

    #[test]
    fn standard_blocking_groups_by_key() {
        let d = dataset(&[("a", "1"), ("a", "2"), ("b", "3"), ("", "4"), ("c", "5")]);
        let blocks = standard_blocks(&d, 0, 0);
        assert_eq!(blocks, vec![vec![0, 1]]); // singletons and nulls dropped
    }

    #[test]
    fn token_blocking_is_schema_agnostic() {
        let d = dataset(&[
            ("x", "thinkpad carbon laptop"),
            ("y", "thinkpad slim laptop"),
            ("z", "apple macbook"),
        ]);
        let blocks = token_blocks(&d, 0, &[1], 100);
        // "thinkpad" and "laptop" both produce {0,1}; dedup happens at pair level.
        assert!(blocks.iter().any(|b| b == &vec![0, 1]));
        assert!(!blocks.iter().any(|b| b.contains(&2)));
        assert_eq!(block_pairs(&blocks), vec![(0, 1)]);
    }

    #[test]
    fn purging_drops_stopword_blocks() {
        let d = dataset(&[("1", "the a"), ("2", "the b"), ("3", "the c"), ("4", "the d")]);
        let blocks = token_blocks(&d, 0, &[1], 3);
        assert!(blocks.iter().all(|b| b.len() <= 3), "{blocks:?}");
    }

    #[test]
    fn meta_blocking_keeps_heavy_pairs() {
        // Pair (0,1) shares 3 blocks, (0,2) shares 1.
        let blocks = vec![vec![0, 1], vec![0, 1], vec![0, 1, 2]];
        let strict = meta_blocking(&blocks, 0.9);
        assert_eq!(strict, vec![(0, 1)]);
        let lax = meta_blocking(&blocks, 0.1);
        assert!(lax.contains(&(0, 2)));
        assert!(meta_blocking(&[], 0.5).is_empty());
    }

    #[test]
    fn lsh_blocks_similar_token_sets() {
        let d = dataset(&[
            ("1", "deep entity resolution in parallel databases"),
            ("2", "deep entity resolution in parallel database"),
            ("3", "quantum chromodynamics lattice simulation"),
        ]);
        let blocks = minhash_lsh_blocks(&d, 0, &[1], 8, 2);
        let pairs = block_pairs(&blocks);
        assert!(pairs.contains(&(0, 1)), "{pairs:?}");
        assert!(!pairs.contains(&(0, 2)));
    }
}
