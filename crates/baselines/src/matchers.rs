//! The named baseline matchers. Every matcher resolves duplicates within
//! a single target relation: candidate generation (blocking / windowing /
//! LSH) followed by pairwise scoring at a threshold, with the result closed
//! transitively — the conventional ER pipeline the paper contrasts with.

use crate::blocking::{
    block_pairs, meta_blocking, minhash_lsh_blocks, standard_blocks, token_blocks,
};
use crate::scoring::PairScorer;
use crate::windowing::SortedNeighborhood;
use dcer_chase::MatchSet;
use dcer_ml::TrainedPairClassifier;
use dcer_relation::{AttrId, Dataset, RelId, Value};
use std::time::Instant;

/// Result of one baseline run.
#[derive(Debug)]
pub struct MatcherResult {
    /// Deduced matches (transitively closed).
    pub matches: MatchSet,
    /// Candidate pairs compared.
    pub candidates: u64,
    /// Wall time.
    pub secs: f64,
}

/// A single-relation baseline matcher.
pub trait Matcher {
    /// Display name for tables.
    fn name(&self) -> &str;
    /// Run over the target relation of `dataset`.
    fn run(&self, dataset: &Dataset) -> MatcherResult;
}

fn score_pairs(
    dataset: &Dataset,
    rel: RelId,
    pairs: &[(u32, u32)],
    scorer: &dyn PairScorer,
    threshold: f64,
) -> MatchSet {
    let tuples = dataset.relation(rel).tuples();
    let mut m = MatchSet::new();
    for &(a, b) in pairs {
        let (ta, tb) = (&tuples[a as usize], &tuples[b as usize]);
        if scorer.score(ta, tb) >= threshold {
            m.merge(ta.tid, tb.tid);
        }
    }
    m
}

/// Dedoop analogue \[45\]: standard blocking on a key attribute, then
/// weighted-average similarity matching within blocks.
pub struct DedoopLike {
    /// Target relation.
    pub rel: RelId,
    /// Blocking key attribute.
    pub block_key: AttrId,
    /// Pair scorer.
    pub scorer: Box<dyn PairScorer>,
    /// Match threshold.
    pub threshold: f64,
}

impl Matcher for DedoopLike {
    fn name(&self) -> &str {
        "Dedoop-like"
    }
    fn run(&self, dataset: &Dataset) -> MatcherResult {
        let t0 = Instant::now();
        let blocks = standard_blocks(dataset, self.rel, self.block_key);
        let pairs = block_pairs(&blocks);
        let matches = score_pairs(dataset, self.rel, &pairs, self.scorer.as_ref(), self.threshold);
        MatcherResult { matches, candidates: pairs.len() as u64, secs: t0.elapsed().as_secs_f64() }
    }
}

/// DisDedup analogue \[22\]: the *same* comparisons as Dedoop but distributed
/// over `w` virtual workers with the triangle distribution of Chu et al.,
/// reporting the resulting balance. Accuracy equals Dedoop's; the point of
/// the analogue is its distribution behaviour.
pub struct DisDedupLike {
    /// Target relation.
    pub rel: RelId,
    /// Blocking key attribute.
    pub block_key: AttrId,
    /// Pair scorer.
    pub scorer: Box<dyn PairScorer>,
    /// Match threshold.
    pub threshold: f64,
    /// Virtual worker count `w` (triangle side `k` with `w = k(k+1)/2`).
    pub workers: usize,
}

impl DisDedupLike {
    /// Triangle-distribute row indices to `k(k+1)/2` reducers: row `i` gets
    /// anchor `a_i = h(i) mod k`; pair `(i, j)` goes to the reducer for the
    /// unordered anchor pair `(a_i, a_j)`. Returns per-reducer pair counts.
    pub fn triangle_loads(&self, pairs: &[(u32, u32)], k: usize) -> Vec<u64> {
        let reducer = |x: usize, y: usize| -> usize {
            let (lo, hi) = (x.min(y), x.max(y));
            // Index into the upper-triangle enumeration.
            lo * k - lo * (lo + 1) / 2 + hi
        };
        let mut loads = vec![0u64; k * (k + 1) / 2];
        for &(i, j) in pairs {
            let (ai, aj) = ((i as usize * 2654435761) % k, (j as usize * 2654435761) % k);
            loads[reducer(ai, aj)] += 1;
        }
        loads
    }
}

impl Matcher for DisDedupLike {
    fn name(&self) -> &str {
        "DisDedup-like"
    }
    fn run(&self, dataset: &Dataset) -> MatcherResult {
        let t0 = Instant::now();
        let blocks = standard_blocks(dataset, self.rel, self.block_key);
        let pairs = block_pairs(&blocks);
        // Simulate the distribution step (load accounting only).
        let k = (1..).find(|&k| k * (k + 1) / 2 >= self.workers).unwrap_or(1);
        let _loads = self.triangle_loads(&pairs, k);
        let matches = score_pairs(dataset, self.rel, &pairs, self.scorer.as_ref(), self.threshold);
        MatcherResult { matches, candidates: pairs.len() as u64, secs: t0.elapsed().as_secs_f64() }
    }
}

/// SparkER analogue \[35\]: schema-agnostic token blocking + BLAST-style
/// meta-blocking, then similarity matching on the surviving pairs.
pub struct SparkErLike {
    /// Target relation.
    pub rel: RelId,
    /// Attributes contributing tokens.
    pub token_attrs: Vec<AttrId>,
    /// Meta-blocking weight cutoff as a fraction of the max weight.
    pub meta_threshold: f64,
    /// Pair scorer.
    pub scorer: Box<dyn PairScorer>,
    /// Match threshold.
    pub threshold: f64,
}

impl Matcher for SparkErLike {
    fn name(&self) -> &str {
        "SparkER-like"
    }
    fn run(&self, dataset: &Dataset) -> MatcherResult {
        let t0 = Instant::now();
        let max_block = (dataset.relation(self.rel).len() / 4).max(8);
        let blocks = token_blocks(dataset, self.rel, &self.token_attrs, max_block);
        let pairs = meta_blocking(&blocks, self.meta_threshold);
        let matches = score_pairs(dataset, self.rel, &pairs, self.scorer.as_ref(), self.threshold);
        MatcherResult { matches, candidates: pairs.len() as u64, secs: t0.elapsed().as_secs_f64() }
    }
}

/// JedAI analogue \[53\]: token blocking + non-learning, structure-agnostic
/// profile similarity (no meta-blocking pruning beyond purging).
pub struct JedAiLike {
    /// Target relation.
    pub rel: RelId,
    /// Attributes contributing tokens.
    pub token_attrs: Vec<AttrId>,
    /// Pair scorer.
    pub scorer: Box<dyn PairScorer>,
    /// Match threshold.
    pub threshold: f64,
}

impl Matcher for JedAiLike {
    fn name(&self) -> &str {
        "JedAI-like"
    }
    fn run(&self, dataset: &Dataset) -> MatcherResult {
        let t0 = Instant::now();
        let max_block = (dataset.relation(self.rel).len() / 4).max(8);
        let blocks = token_blocks(dataset, self.rel, &self.token_attrs, max_block);
        let pairs = block_pairs(&blocks);
        let matches = score_pairs(dataset, self.rel, &pairs, self.scorer.as_ref(), self.threshold);
        MatcherResult { matches, candidates: pairs.len() as u64, secs: t0.elapsed().as_secs_f64() }
    }
}

/// DeepER analogue \[25\]: MinHash-LSH blocking, then a *trained* pair
/// classifier on the candidates.
pub struct DeepErLike {
    /// Target relation.
    pub rel: RelId,
    /// Attributes embedded / classified.
    pub attrs: Vec<AttrId>,
    /// The trained classifier.
    pub classifier: TrainedPairClassifier,
    /// LSH bands.
    pub bands: usize,
    /// Rows per band.
    pub rows_per_band: usize,
}

impl Matcher for DeepErLike {
    fn name(&self) -> &str {
        "DeepER-like"
    }
    fn run(&self, dataset: &Dataset) -> MatcherResult {
        let t0 = Instant::now();
        let blocks =
            minhash_lsh_blocks(dataset, self.rel, &self.attrs, self.bands, self.rows_per_band);
        let pairs = block_pairs(&blocks);
        let tuples = dataset.relation(self.rel).tuples();
        let mut matches = MatchSet::new();
        for &(a, b) in &pairs {
            let (ta, tb) = (&tuples[a as usize], &tuples[b as usize]);
            let va: Vec<Value> = self.attrs.iter().map(|&x| ta.get(x).clone()).collect();
            let vb: Vec<Value> = self.attrs.iter().map(|&x| tb.get(x).clone()).collect();
            if dcer_ml::MlModel::predict(&self.classifier, &va, &vb) {
                matches.merge(ta.tid, tb.tid);
            }
        }
        MatcherResult { matches, candidates: pairs.len() as u64, secs: t0.elapsed().as_secs_f64() }
    }
}

/// Ditto / DeepMatcher analogue \[48\], \[43\]: a trained pairwise classifier
/// over candidates from a generous union of windowing and token blocking
/// (pure quadratic comparison is intractable even for the originals; both
/// systems are run behind candidate generation in practice).
pub struct PairwiseMlLike {
    /// Display name ("Ditto-like" / "DeepMatcher-like").
    pub label: String,
    /// Target relation.
    pub rel: RelId,
    /// Attributes classified.
    pub attrs: Vec<AttrId>,
    /// The trained classifier.
    pub classifier: TrainedPairClassifier,
    /// Sorted-neighborhood window size.
    pub window: usize,
}

impl Matcher for PairwiseMlLike {
    fn name(&self) -> &str {
        &self.label
    }
    fn run(&self, dataset: &Dataset) -> MatcherResult {
        let t0 = Instant::now();
        let sn = SortedNeighborhood::new(self.attrs.clone(), self.window);
        let mut pairs = sn.candidate_pairs(dataset, self.rel);
        let max_block = (dataset.relation(self.rel).len() / 4).max(8);
        pairs.extend(block_pairs(&token_blocks(dataset, self.rel, &self.attrs, max_block)));
        pairs.sort_unstable();
        pairs.dedup();
        let tuples = dataset.relation(self.rel).tuples();
        let mut matches = MatchSet::new();
        for &(a, b) in &pairs {
            let (ta, tb) = (&tuples[a as usize], &tuples[b as usize]);
            let va: Vec<Value> = self.attrs.iter().map(|&x| ta.get(x).clone()).collect();
            let vb: Vec<Value> = self.attrs.iter().map(|&x| tb.get(x).clone()).collect();
            if dcer_ml::MlModel::predict(&self.classifier, &va, &vb) {
                matches.merge(ta.tid, tb.tid);
            }
        }
        MatcherResult { matches, candidates: pairs.len() as u64, secs: t0.elapsed().as_secs_f64() }
    }
}

/// ERBlox analogue \[12\]: matching-dependency-style blocking keys (exact
/// equality on the key attributes) with ML classification inside blocks.
pub struct ErBloxLike {
    /// Target relation.
    pub rel: RelId,
    /// MD blocking keys: a pair enters a block when equal on *any* of these.
    pub block_keys: Vec<AttrId>,
    /// Attributes classified.
    pub attrs: Vec<AttrId>,
    /// The trained classifier.
    pub classifier: TrainedPairClassifier,
}

impl Matcher for ErBloxLike {
    fn name(&self) -> &str {
        "ERBlox-like"
    }
    fn run(&self, dataset: &Dataset) -> MatcherResult {
        let t0 = Instant::now();
        let mut pairs = Vec::new();
        for &k in &self.block_keys {
            pairs.extend(block_pairs(&standard_blocks(dataset, self.rel, k)));
        }
        pairs.sort_unstable();
        pairs.dedup();
        let tuples = dataset.relation(self.rel).tuples();
        let mut matches = MatchSet::new();
        for &(a, b) in &pairs {
            let (ta, tb) = (&tuples[a as usize], &tuples[b as usize]);
            let va: Vec<Value> = self.attrs.iter().map(|&x| ta.get(x).clone()).collect();
            let vb: Vec<Value> = self.attrs.iter().map(|&x| tb.get(x).clone()).collect();
            if dcer_ml::MlModel::predict(&self.classifier, &va, &vb) {
                matches.merge(ta.tid, tb.tid);
            }
        }
        MatcherResult { matches, candidates: pairs.len() as u64, secs: t0.elapsed().as_secs_f64() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scoring::{SimKind, WeightedScorer};
    use dcer_relation::{Catalog, RelationSchema, ValueType};
    use std::sync::Arc;

    /// name, city; rows 0/1 are duplicates (typo), 2 unrelated, 3/4 exact
    /// duplicates.
    fn dataset() -> Dataset {
        let cat = Arc::new(
            Catalog::from_schemas(vec![RelationSchema::of(
                "R",
                &[("name", ValueType::Str), ("city", ValueType::Str)],
            )])
            .unwrap(),
        );
        let mut d = Dataset::new(cat);
        for (n, c) in [
            ("Ford Smith", "LA"),
            ("Ford Smiht", "LA"),
            ("Tony Brown", "NY"),
            ("Alice Chen", "SF"),
            ("Alice Chen", "SF"),
        ] {
            d.insert(0, vec![n.into(), c.into()]).unwrap();
        }
        d
    }

    fn trained() -> TrainedPairClassifier {
        let mut examples = Vec::new();
        for i in 0..30 {
            let name = format!("person number {i} smith");
            examples.push((
                vec![Value::str(&name), Value::str("LA")],
                vec![Value::str(format!("person number {i} smith x")), Value::str("LA")],
                true,
            ));
            examples.push((
                vec![Value::str(&name), Value::str("LA")],
                vec![Value::str(format!("other human {}", 29 - i)), Value::str("NY")],
                false,
            ));
        }
        TrainedPairClassifier::train(&examples, 300, 0.5)
    }

    fn tid(r: u32) -> dcer_relation::Tid {
        dcer_relation::Tid::new(0, r)
    }

    #[test]
    fn dedoop_like_matches_within_blocks() {
        let d = dataset();
        let m = DedoopLike {
            rel: 0,
            block_key: 1,
            scorer: Box::new(WeightedScorer::uniform(&[0], SimKind::JaroWinkler)),
            threshold: 0.9,
        };
        let mut r = m.run(&d);
        assert!(r.matches.are_matched(tid(0), tid(1)));
        assert!(r.matches.are_matched(tid(3), tid(4)));
        assert!(!r.matches.are_matched(tid(0), tid(2)));
        assert!(r.candidates >= 2);
    }

    #[test]
    fn disdedup_like_same_accuracy_with_balanced_triangle() {
        let d = dataset();
        let m = DisDedupLike {
            rel: 0,
            block_key: 1,
            scorer: Box::new(WeightedScorer::uniform(&[0], SimKind::JaroWinkler)),
            threshold: 0.9,
            workers: 3,
        };
        let mut r = m.run(&d);
        assert!(r.matches.are_matched(tid(0), tid(1)));
        let loads = m.triangle_loads(&[(0, 1), (1, 2), (2, 3), (0, 3)], 3);
        assert_eq!(loads.len(), 6);
        assert_eq!(loads.iter().sum::<u64>(), 4);
    }

    #[test]
    fn sparker_and_jedai_like_use_token_blocks() {
        let d = dataset();
        let scorer = || Box::new(WeightedScorer::uniform(&[0], SimKind::NgramCosine));
        let sp = SparkErLike {
            rel: 0,
            token_attrs: vec![0, 1],
            meta_threshold: 0.3,
            scorer: scorer(),
            threshold: 0.8,
        };
        let mut r = sp.run(&d);
        assert!(r.matches.are_matched(tid(3), tid(4)));
        // A transposition in "Smiht" drops 3-gram cosine to ~0.7.
        let jd = JedAiLike { rel: 0, token_attrs: vec![0, 1], scorer: scorer(), threshold: 0.65 };
        let mut r = jd.run(&d);
        assert!(r.matches.are_matched(tid(3), tid(4)));
        assert!(r.matches.are_matched(tid(0), tid(1)));
    }

    #[test]
    fn deeper_like_classifies_lsh_candidates() {
        let d = dataset();
        let m = DeepErLike {
            rel: 0,
            attrs: vec![0, 1],
            classifier: trained(),
            bands: 8,
            rows_per_band: 1,
        };
        let mut r = m.run(&d);
        assert!(r.matches.are_matched(tid(3), tid(4)), "exact dup survives LSH + classifier");
        assert!(!r.matches.are_matched(tid(2), tid(3)));
    }

    #[test]
    fn pairwise_ml_like_and_erblox_like_run() {
        let d = dataset();
        let m = PairwiseMlLike {
            label: "Ditto-like".into(),
            rel: 0,
            attrs: vec![0, 1],
            classifier: trained(),
            window: 3,
        };
        assert_eq!(m.name(), "Ditto-like");
        let mut r = m.run(&d);
        assert!(r.matches.are_matched(tid(3), tid(4)));

        let e =
            ErBloxLike { rel: 0, block_keys: vec![1], attrs: vec![0, 1], classifier: trained() };
        let mut r = e.run(&d);
        assert!(r.matches.are_matched(tid(3), tid(4)));
        assert!(!r.matches.are_matched(tid(0), tid(2)), "different blocks");
    }
}
