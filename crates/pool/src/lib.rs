//! One work-stealing thread pool for the whole pipeline.
//!
//! Every parallel region of the dcer stack — the HyPart distribution scan,
//! merge, fragment and host-table builds, `IndexSet::build_all`, the fleet
//! build and the threaded BSP superstep loop — used to spawn fresh
//! [`std::thread::scope`] threads over even-by-count splits. This crate
//! replaces all of them with a single reusable [`WorkPool`] created once
//! per session/pipeline run:
//!
//! - **Batch mode** ([`WorkPool::run`]): a vector of independent tasks is
//!   distributed over per-lane deques by a caller-supplied cost model
//!   (contiguous, weight-balanced split). The caller participates as lane
//!   0; idle workers steal half of the richest lane's queue from the back.
//!   Results land in index-ordered slots, so the output is a pure function
//!   of the task list — bit-identical at every pool size regardless of
//!   which thread executed what (determinism by ordered merge).
//! - **Resident mode** ([`WorkPool::run_resident`]): long-running tasks
//!   that must all execute *concurrently* (the threaded BSP workers, which
//!   block on barriers). Each task occupies one pool worker for its whole
//!   lifetime; the caller runs task 0, and tasks beyond the pool size get
//!   temporary scoped threads so progress never depends on pool capacity.
//! - **Parking**: workers with no claimable work sleep on a condvar. While
//!   a batch is still in flight the wait is recorded as a `pool.park` span
//!   (attributed to the `scheduler` phase of the makespan decomposition);
//!   between phases workers park silently.
//!
//! Pool threads are OS-named `pool-{i}`, which is also the label their
//! lazily-allocated trace tracks inherit, keeping profiler output
//! readable. Instrumentation: `pool.task` / `pool.steal` / `pool.park`
//! counters and a per-lane `pool.queue_depth` gauge (all free when no
//! recorder is installed).

use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A fixed-size work-stealing pool. `size` counts the *caller's* lane:
/// `WorkPool::new(1)` spawns no threads at all and runs everything inline,
/// `WorkPool::new(8)` spawns 7 workers that cooperate with the calling
/// thread. Dropping the pool joins all workers.
pub struct WorkPool {
    shared: Arc<Shared>,
    size: usize,
    /// Serializes resident groups: a second concurrent
    /// [`WorkPool::run_resident`] waits for the first instead of competing
    /// for workers its barrier-coupled tasks need.
    resident_serial: Mutex<()>,
    handles: Vec<JoinHandle<()>>,
}

/// Cumulative pool counters (monotonic over the pool's lifetime).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Tasks executed (batch and resident, any lane).
    pub tasks: u64,
    /// Steal operations (one per half-queue transfer, not per task).
    pub steals: u64,
    /// Times a worker went to sleep on the condvar.
    pub parks: u64,
}

struct Shared {
    state: Mutex<PoolState>,
    work_cv: Condvar,
    tasks: AtomicU64,
    steals: AtomicU64,
    parks: AtomicU64,
}

#[derive(Default)]
struct PoolState {
    /// Active batches, oldest first. Erased to `'static`: see the safety
    /// argument on [`WorkPool::run`].
    batches: Vec<Arc<dyn BatchRun>>,
    /// Pending resident jobs; each is claimed by exactly one worker and
    /// runs to completion on it.
    resident: VecDeque<ResidentJob>,
    shutdown: bool,
}

struct ResidentJob(Box<dyn FnOnce() + Send>);

/// Type-erased view of one in-flight batch, shared with the workers.
trait BatchRun: Send + Sync {
    /// Execute one task for `lane` (own queue first, else steal half of
    /// the richest other lane). Returns `false` when no task is claimable.
    fn run_one(&self, lane: usize) -> bool;
    /// Whether any lane still holds unclaimed tasks.
    fn has_work(&self) -> bool;
}

struct Batch<T, F> {
    lanes: Vec<Mutex<VecDeque<usize>>>,
    tasks: Vec<Mutex<Option<F>>>,
    results: Vec<Mutex<Option<std::thread::Result<T>>>>,
    remaining: AtomicUsize,
    done: Mutex<bool>,
    done_cv: Condvar,
    stats: Arc<Shared>,
}

impl<T: Send, F: FnOnce() -> T + Send> Batch<T, F> {
    fn execute(&self, idx: usize) {
        let f = self.tasks[idx].lock().unwrap().take().expect("task claimed once");
        let out = catch_unwind(AssertUnwindSafe(f));
        *self.results[idx].lock().unwrap() = Some(out);
        self.stats.tasks.fetch_add(1, Ordering::Relaxed);
        dcer_obs::counter_add("pool.task", 1);
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            *self.done.lock().unwrap() = true;
            self.done_cv.notify_all();
        }
    }
}

impl<T: Send, F: FnOnce() -> T + Send> BatchRun for Batch<T, F> {
    // Lock discipline: lane mutexes are leaf locks — they are only ever
    // held for a queue operation and released before executing a task,
    // stealing, or touching any other lock. (`worker_loop` holds the pool
    // state lock while probing `has_work`, so a thread that held a lane
    // lock while waiting on anything else would complete an ABBA cycle.)
    fn run_one(&self, lane: usize) -> bool {
        loop {
            // Bind the pop outside `if let` so the guard (a temporary in
            // the scrutinee, which would live for the whole `if let`) is
            // dropped before the task runs.
            let popped = self.lanes[lane].lock().unwrap().pop_front();
            if let Some(idx) = popped {
                self.execute(idx);
                return true;
            }
            // Own queue dry: steal the back half of the richest other lane.
            let victim = self
                .lanes
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != lane)
                .map(|(i, q)| (q.lock().unwrap().len(), i))
                .max_by_key(|&(len, i)| (len, usize::MAX - i))
                .filter(|&(len, _)| len > 0)
                .map(|(_, i)| i);
            let Some(victim) = victim else { return false };
            let stolen = {
                let mut q = self.lanes[victim].lock().unwrap();
                let n = q.len();
                if n == 0 {
                    None // drained between the length scan and this lock
                } else {
                    let half = q.split_off(n - n.div_ceil(2));
                    dcer_obs::gauge_set_labeled("pool.queue_depth", victim as u32, q.len() as f64);
                    Some(half)
                }
            };
            let Some(stolen) = stolen else { continue }; // lost the race; rescan lock-free
            self.stats.steals.fetch_add(1, Ordering::Relaxed);
            dcer_obs::counter_add("pool.steal", 1);
            let idx = {
                let mut own = self.lanes[lane].lock().unwrap();
                own.extend(stolen);
                let idx = own.pop_front();
                dcer_obs::gauge_set_labeled("pool.queue_depth", lane as u32, own.len() as f64);
                idx
            };
            match idx {
                Some(idx) => {
                    self.execute(idx);
                    return true;
                }
                None => return false,
            }
        }
    }

    fn has_work(&self) -> bool {
        self.lanes.iter().any(|q| !q.lock().unwrap().is_empty())
    }
}

/// Contiguous weight-balanced split of task indices `0..n` into `lanes`
/// queues: cut points are where the cumulative weight crosses each lane's
/// equal share. A pure function of the weights, so the distribution — and
/// with it every downstream artifact — is deterministic. Falls back to an
/// even-by-count split without weights (or when all weights are zero).
fn distribute(n: usize, weights: Option<&[u64]>, lanes: usize) -> Vec<VecDeque<usize>> {
    let mut queues: Vec<VecDeque<usize>> = (0..lanes).map(|_| VecDeque::new()).collect();
    let total: u128 = weights.map_or(0, |w| w.iter().map(|&x| x as u128).sum());
    match weights {
        Some(w) if total > 0 => {
            debug_assert_eq!(w.len(), n);
            let mut cum = 0u128;
            let mut lane = 0usize;
            for (i, &wi) in w.iter().enumerate() {
                // Advance past every lane whose share is already filled.
                while lane + 1 < lanes && cum * lanes as u128 >= total * (lane + 1) as u128 {
                    lane += 1;
                }
                queues[lane].push_back(i);
                cum += wi as u128;
            }
        }
        _ => {
            for (lane, q) in queues.iter_mut().enumerate() {
                for i in n * lane / lanes..n * (lane + 1) / lanes {
                    q.push_back(i);
                }
            }
        }
    }
    queues
}

impl WorkPool {
    /// Create a pool of `size` lanes (`size - 1` OS threads plus the
    /// caller). `size` is clamped to at least 1.
    pub fn new(size: usize) -> WorkPool {
        let size = size.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState::default()),
            work_cv: Condvar::new(),
            tasks: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            parks: AtomicU64::new(0),
        });
        let handles = (0..size - 1)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("pool-{i}"))
                    .spawn(move || worker_loop(shared, i))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkPool { shared, size, resident_serial: Mutex::new(()), handles }
    }

    /// Number of lanes (including the caller's).
    pub fn size(&self) -> usize {
        self.size
    }

    /// Snapshot of the cumulative counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            tasks: self.shared.tasks.load(Ordering::Relaxed),
            steals: self.shared.steals.load(Ordering::Relaxed),
            parks: self.shared.parks.load(Ordering::Relaxed),
        }
    }

    /// Run a batch of independent tasks, returning results in task order.
    ///
    /// `weights` (same length as `tasks`) is the cost model: the initial
    /// distribution gives each lane a contiguous, weight-balanced index
    /// range, and stealing absorbs whatever imbalance the model missed.
    /// With one lane (or one task) everything runs inline on the caller,
    /// sequentially and in order.
    ///
    /// Panics in a task are caught, and the first one (in task order) is
    /// resumed on the caller after every task has finished — the same
    /// observable behavior as `std::thread::scope`.
    pub fn run<T, F>(&self, tasks: Vec<F>, weights: Option<&[u64]>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let n = tasks.len();
        if n == 0 {
            return Vec::new();
        }
        if self.size == 1 || n == 1 {
            return tasks.into_iter().map(|f| f()).collect();
        }
        let lanes = distribute(n, weights, self.size);
        if dcer_obs::enabled() {
            for (lane, q) in lanes.iter().enumerate() {
                dcer_obs::gauge_set_labeled("pool.queue_depth", lane as u32, q.len() as f64);
            }
        }
        let batch = Arc::new(Batch {
            lanes: lanes.into_iter().map(Mutex::new).collect(),
            tasks: tasks.into_iter().map(|f| Mutex::new(Some(f))).collect(),
            results: (0..n).map(|_| Mutex::new(None)).collect(),
            remaining: AtomicUsize::new(n),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
            stats: Arc::clone(&self.shared),
        });

        // SAFETY: `Batch` borrows the caller's environment through `T` and
        // `F`. The lifetime is erased so workers (plain `'static` threads)
        // can share it, which is sound because:
        // (1) this function does not return (or unwind) before `remaining`
        //     hits zero, i.e. every `F` has been consumed and every `T`
        //     moved into a result slot — all while the environment is live;
        // (2) the results (and any panic payloads) are drained below,
        //     still inside this call, so no borrowed value outlives it;
        // (3) a worker that holds the erased Arc after completion only
        //     touches empty queues/slots and plain atomics; the eventual
        //     drop of the Arc frees containers that hold no borrowed data.
        let erased: Arc<dyn BatchRun + '_> = batch.clone();
        let erased: Arc<dyn BatchRun> =
            unsafe { std::mem::transmute::<Arc<dyn BatchRun + '_>, Arc<dyn BatchRun>>(erased) };
        let key = Arc::as_ptr(&erased) as *const ();
        self.shared.state.lock().unwrap().batches.push(erased);
        self.shared.work_cv.notify_all();

        // The caller is lane 0.
        while batch.run_one(0) {}
        let mut d = batch.done.lock().unwrap();
        while !*d {
            d = batch.done_cv.wait(d).unwrap();
        }
        drop(d);
        self.shared.state.lock().unwrap().batches.retain(|b| Arc::as_ptr(b) as *const () != key);
        // Wake parked workers so any open `pool.park` span closes with the
        // batch instead of stretching into the next phase.
        self.shared.work_cv.notify_all();

        let mut out: Vec<std::thread::Result<T>> =
            batch.results.iter().map(|s| s.lock().unwrap().take().expect("task ran")).collect();
        if let Some(pos) = out.iter().position(|r| r.is_err()) {
            let Err(payload) = out.swap_remove(pos) else { unreachable!() };
            drop(out); // drop surviving results before unwinding past them
            resume_unwind(payload);
        }
        out.into_iter().map(|r| r.unwrap()).collect()
    }

    /// Run `tasks` **concurrently**, one lane each, returning results in
    /// task order — the dispatch mode for threaded BSP workers, which
    /// block on barriers and therefore must all make progress at once.
    ///
    /// Task 0 runs on the caller; tasks `1..=size-1` occupy pool workers
    /// for their whole lifetime; any excess gets a temporary scoped thread
    /// (`pool-extra-{i}`), so correctness never depends on pool capacity.
    /// Concurrent resident groups are serialized against each other.
    pub fn run_resident<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let n = tasks.len();
        if n == 0 {
            return Vec::new();
        }
        let _serial = self.resident_serial.lock().unwrap();
        let results: Vec<Mutex<Option<std::thread::Result<T>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let claimed = (n - 1).min(self.size - 1);
        let remaining = AtomicUsize::new(claimed);
        let done = Mutex::new(claimed == 0);
        let done_cv = Condvar::new();

        std::thread::scope(|s| {
            let mut it = tasks.into_iter();
            let first = it.next().expect("n >= 1");
            let (results, remaining, done, done_cv) = (&results, &remaining, &done, &done_cv);
            {
                let mut st = self.shared.state.lock().unwrap();
                for (i, f) in it.by_ref().take(claimed).enumerate() {
                    let idx = i + 1;
                    let job = move || {
                        let out = catch_unwind(AssertUnwindSafe(f));
                        *results[idx].lock().unwrap() = Some(out);
                        if remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                            *done.lock().unwrap() = true;
                            done_cv.notify_all();
                        }
                    };
                    // SAFETY: same argument as in `run` — the scope below
                    // does not exit before `remaining` hits zero, so the
                    // erased closure and everything it borrows outlive its
                    // execution; the box is consumed exactly once.
                    let boxed: Box<dyn FnOnce() + Send + '_> = Box::new(job);
                    let boxed: Box<dyn FnOnce() + Send> = unsafe {
                        std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Box<dyn FnOnce() + Send>>(
                            boxed,
                        )
                    };
                    st.resident.push_back(ResidentJob(boxed));
                }
            }
            self.shared.work_cv.notify_all();
            for (i, f) in it.enumerate() {
                let idx = claimed + 1 + i;
                std::thread::Builder::new()
                    .name(format!("pool-extra-{idx}"))
                    .spawn_scoped(s, move || {
                        let out = catch_unwind(AssertUnwindSafe(f));
                        *results[idx].lock().unwrap() = Some(out);
                        dcer_obs::counter_add("pool.task", 1);
                    })
                    .expect("spawn resident overflow thread");
            }
            self.shared.tasks.fetch_add(1, Ordering::Relaxed);
            dcer_obs::counter_add("pool.task", 1);
            let out = catch_unwind(AssertUnwindSafe(first));
            *results[0].lock().unwrap() = Some(out);
            let mut d = done.lock().unwrap();
            while !*d {
                d = done_cv.wait(d).unwrap();
            }
        });

        let mut out: Vec<std::thread::Result<T>> =
            results.iter().map(|s| s.lock().unwrap().take().expect("resident task ran")).collect();
        if let Some(pos) = out.iter().position(|r| r.is_err()) {
            let Err(payload) = out.swap_remove(pos) else { unreachable!() };
            drop(out);
            resume_unwind(payload);
        }
        out.into_iter().map(|r| r.unwrap()).collect()
    }
}

fn worker_loop(shared: Arc<Shared>, worker: usize) {
    let lane = worker + 1;
    loop {
        enum Work {
            Resident(ResidentJob),
            Batch(Arc<dyn BatchRun>),
        }
        let work = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if let Some(job) = st.resident.pop_front() {
                    break Work::Resident(job);
                }
                if let Some(b) = st.batches.iter().find(|b| b.has_work()) {
                    break Work::Batch(Arc::clone(b));
                }
                shared.parks.fetch_add(1, Ordering::Relaxed);
                dcer_obs::counter_add("pool.park", 1);
                if st.batches.is_empty() {
                    // Between phases: park silently.
                    st = shared.work_cv.wait(st).unwrap();
                } else {
                    // A batch is in flight but its tail is running on other
                    // lanes: this is scheduler idle time, attributed as
                    // such in the makespan decomposition.
                    let _park = dcer_obs::span("pool.park");
                    st = shared.work_cv.wait(st).unwrap();
                }
            }
        };
        match work {
            Work::Resident(job) => {
                shared.tasks.fetch_add(1, Ordering::Relaxed);
                dcer_obs::counter_add("pool.task", 1);
                (job.0)();
            }
            Work::Batch(batch) => while batch.run_one(lane) {},
        }
    }
}

impl Drop for WorkPool {
    fn drop(&mut self) {
        self.shared.state.lock().unwrap().shutdown = true;
        self.shared.work_cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl fmt::Debug for WorkPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkPool").field("size", &self.size).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;
    use std::time::Duration;

    #[test]
    fn results_are_in_task_order_at_every_size() {
        for size in [1, 2, 4, 8] {
            let pool = WorkPool::new(size);
            let tasks: Vec<_> = (0..50).map(|i| move || i * 3).collect();
            let out = pool.run(tasks, None);
            assert_eq!(out, (0..50).map(|i| i * 3).collect::<Vec<_>>(), "size {size}");
        }
    }

    #[test]
    fn borrows_from_the_caller_environment() {
        let data: Vec<u64> = (0..1000).collect();
        let pool = WorkPool::new(4);
        let tasks: Vec<_> = (0..8)
            .map(|k| {
                let data = &data;
                move || data.iter().skip(k).step_by(8).sum::<u64>()
            })
            .collect();
        let out = pool.run(tasks, None);
        assert_eq!(out.iter().sum::<u64>(), data.iter().sum::<u64>());
    }

    #[test]
    fn weighted_distribution_is_contiguous_and_total() {
        let lanes = distribute(10, Some(&[1, 1, 1, 1, 100, 1, 1, 1, 1, 1]), 3);
        let all: Vec<usize> = lanes.iter().flatten().copied().collect();
        assert_eq!(all, (0..10).collect::<Vec<_>>(), "contiguous, complete, in order");
        // The heavy task's lane should not also hold the whole tail.
        let heavy_lane = lanes.iter().position(|q| q.contains(&4)).unwrap();
        assert!(lanes[heavy_lane].len() < 10);
    }

    #[test]
    fn zero_total_weight_falls_back_to_even_split() {
        let lanes = distribute(8, Some(&[0; 8]), 4);
        assert!(lanes.iter().all(|q| q.len() == 2));
    }

    #[test]
    fn idle_workers_steal_from_a_skewed_lane() {
        // Two lanes, even split: the caller's lane leads with a 60ms
        // sleeper, so its queued tail can only finish early if the worker
        // steals it after draining its own (trivial) lane. The sleep gives
        // the worker a wide window, making the steal all but certain.
        let pool = WorkPool::new(2);
        let ran = AtomicU32::new(0);
        let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..32)
            .map(|i| {
                let ran = &ran;
                let f: Box<dyn FnOnce() + Send> = if i == 0 {
                    Box::new(move || {
                        std::thread::sleep(Duration::from_millis(60));
                        ran.fetch_add(1, Ordering::Relaxed);
                    })
                } else {
                    Box::new(move || {
                        ran.fetch_add(1, Ordering::Relaxed);
                    })
                };
                f
            })
            .collect();
        pool.run(tasks.into_iter().map(|f| move || f()).collect(), None);
        assert_eq!(ran.load(Ordering::Relaxed), 32);
        assert!(pool.stats().steals > 0, "expected steals, got {:?}", pool.stats());
    }

    #[test]
    fn resident_tasks_run_concurrently_even_beyond_pool_size() {
        use std::sync::Barrier;
        // 8 barrier-coupled tasks on a 2-lane pool: 1 caller + 1 worker +
        // 6 overflow threads must all rendezvous.
        let pool = WorkPool::new(2);
        let barrier = Barrier::new(8);
        let tasks: Vec<_> = (0..8)
            .map(|i| {
                let barrier = &barrier;
                move || {
                    barrier.wait();
                    i * 7
                }
            })
            .collect();
        let out = pool.run_resident(tasks);
        assert_eq!(out, (0..8).map(|i| i * 7).collect::<Vec<_>>());
    }

    #[test]
    fn pool_is_reusable_across_batches() {
        let pool = WorkPool::new(3);
        for round in 0..20 {
            let out = pool.run((0..10).map(|i| move || i + round).collect(), None);
            assert_eq!(out, (0..10).map(|i| i + round).collect::<Vec<i32>>());
        }
        assert_eq!(pool.stats().tasks, 200);
    }

    #[test]
    fn task_panic_propagates_after_batch_completes() {
        let pool = WorkPool::new(4);
        let completed = AtomicU32::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let completed = &completed;
            let tasks: Vec<Box<dyn FnOnce() -> u32 + Send>> = (0..8)
                .map(|i| {
                    let f: Box<dyn FnOnce() -> u32 + Send> = if i == 3 {
                        Box::new(|| panic!("task 3 exploded"))
                    } else {
                        Box::new(move || {
                            completed.fetch_add(1, Ordering::Relaxed);
                            i
                        })
                    };
                    f
                })
                .collect();
            pool.run(tasks.into_iter().map(|f| move || f()).collect(), None)
        }));
        assert!(result.is_err());
        assert_eq!(completed.load(Ordering::Relaxed), 7, "all other tasks still ran");
        // The pool survives the panic.
        assert_eq!(pool.run(vec![|| 1, || 2], None), vec![1, 2]);
    }

    #[test]
    fn nested_run_from_inside_a_task_completes() {
        let pool = Arc::new(WorkPool::new(3));
        let inner_pool = Arc::clone(&pool);
        let out = pool.run(
            vec![
                Box::new(move || inner_pool.run(vec![|| 10u64, || 20u64], None).iter().sum())
                    as Box<dyn FnOnce() -> u64 + Send>,
                Box::new(|| 5u64),
            ]
            .into_iter()
            .map(|f| move || f())
            .collect(),
            None,
        );
        assert_eq!(out, vec![30, 5]);
    }

    #[test]
    fn single_lane_pool_runs_inline_in_order() {
        let pool = WorkPool::new(1);
        let order = Mutex::new(Vec::new());
        let tasks: Vec<_> = (0..5)
            .map(|i| {
                let order = &order;
                move || order.lock().unwrap().push(i)
            })
            .collect();
        pool.run(tasks, None);
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3, 4]);
        assert!(pool.handles.is_empty(), "size-1 pool spawns no threads");
    }
}
