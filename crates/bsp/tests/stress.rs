//! Stress tests for the BSP runtime: many workers, message storms, long
//! chains of supersteps, and agreement between threaded and simulated
//! execution under load.

use dcer_bsp::{run_bsp, CostModel, ExecutionMode, Master, Worker, WorkerId};

/// Gossip worker: holds a set of u32 tokens; each superstep it absorbs the
/// inbox and emits tokens it has not yet broadcast. Converges when every
/// worker holds the union.
struct Gossip {
    tokens: std::collections::BTreeSet<u32>,
    broadcast: std::collections::BTreeSet<u32>,
}

impl Gossip {
    fn new(seed: impl IntoIterator<Item = u32>) -> Gossip {
        Gossip { tokens: seed.into_iter().collect(), broadcast: Default::default() }
    }
}

impl Worker for Gossip {
    type Msg = u32;
    fn initial(&mut self) -> Vec<u32> {
        let fresh: Vec<u32> = self.tokens.iter().copied().collect();
        self.broadcast.extend(fresh.iter().copied());
        fresh
    }
    fn superstep(&mut self, inbox: Vec<u32>) -> Vec<u32> {
        self.tokens.extend(inbox.iter().copied());
        let fresh: Vec<u32> =
            self.tokens.iter().copied().filter(|t| !self.broadcast.contains(t)).collect();
        self.broadcast.extend(fresh.iter().copied());
        fresh
    }
}

/// Ring master: tokens travel to the next worker only, so full propagation
/// needs ~n supersteps (a long chain).
struct Ring {
    n: usize,
}

impl Master<u32> for Ring {
    fn route(&mut self, from: WorkerId, msgs: Vec<u32>) -> Vec<(WorkerId, u32)> {
        msgs.into_iter().map(|m| ((from + 1) % self.n, m)).collect()
    }
}

fn run_ring(n: usize, mode: ExecutionMode) -> (Vec<Gossip>, dcer_bsp::BspStats) {
    let workers: Vec<Gossip> = (0..n).map(|i| Gossip::new([i as u32])).collect();
    run_bsp(workers, &mut Ring { n }, mode, &CostModel::default(), |_| 4)
}

#[test]
fn ring_propagation_needs_n_supersteps() {
    for mode in [ExecutionMode::Simulated, ExecutionMode::Threaded] {
        let n = 24;
        let (workers, stats) = run_ring(n, mode);
        for w in &workers {
            assert_eq!(w.tokens.len(), n, "{mode:?}: every worker saw every token");
        }
        assert!(stats.supersteps >= n, "{mode:?}: chain length forces ~n steps");
        // Each token visits every worker once: n tokens x n hops.
        assert_eq!(stats.messages, (n * n) as u64, "{mode:?}");
    }
}

#[test]
fn modes_agree_under_load() {
    let (ws, sim) = run_ring(16, ExecutionMode::Simulated);
    let (wt, thr) = run_ring(16, ExecutionMode::Threaded);
    assert_eq!(sim.messages, thr.messages);
    assert_eq!(sim.supersteps, thr.supersteps);
    for (a, b) in ws.iter().zip(&wt) {
        assert_eq!(a.tokens, b.tokens);
    }
}

#[test]
fn message_storm_with_many_threads() {
    // 64 threaded workers, all-to-all broadcast of 8 tokens each: 512
    // distinct tokens, every worker must converge to all of them.
    struct AllToAll {
        n: usize,
    }
    impl Master<u32> for AllToAll {
        fn route(&mut self, _from: WorkerId, msgs: Vec<u32>) -> Vec<(WorkerId, u32)> {
            let mut out = Vec::with_capacity(msgs.len() * self.n);
            for m in msgs {
                for w in 0..self.n {
                    out.push((w, m));
                }
            }
            out
        }
    }
    let n = 64;
    let workers: Vec<Gossip> =
        (0..n).map(|i| Gossip::new((0..8).map(|j| (i * 8 + j) as u32))).collect();
    let (workers, stats) = run_bsp(
        workers,
        &mut AllToAll { n },
        ExecutionMode::Threaded,
        &CostModel::default(),
        |_| 4,
    );
    for w in &workers {
        assert_eq!(w.tokens.len(), n * 8);
    }
    assert!(stats.messages >= (n * 8 * (n - 1)) as u64);
    assert_eq!(stats.worker_busy_secs.len(), n);
}

#[test]
fn makespan_is_bounded_by_total_compute_plus_overheads() {
    let (_, stats) = run_ring(12, ExecutionMode::Simulated);
    let overhead = stats.supersteps as f64 * CostModel::default().barrier_secs
        + stats.bytes as f64 * CostModel::default().secs_per_byte;
    assert!(stats.makespan_secs <= stats.total_compute_secs + overhead + 1e-6);
    assert!(stats.makespan_secs >= stats.step_max_secs.iter().sum::<f64>());
}
