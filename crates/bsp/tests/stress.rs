//! Stress tests for the BSP runtime: many workers, message storms, long
//! chains of supersteps, and agreement between threaded and simulated
//! execution under load.

use dcer_bsp::{run_bsp, CostModel, ExecutionMode, Worker, WorkerId};
use std::collections::BTreeSet;

/// Gossip worker: holds a set of u32 tokens; each superstep it absorbs the
/// inbox and routes tokens it has not yet forwarded. Converges when every
/// worker holds the union.
struct Gossip {
    id: WorkerId,
    tokens: BTreeSet<u32>,
    forwarded: BTreeSet<u32>,
    /// Destination shards for each fresh token.
    fanout: Fanout,
    n: usize,
    absorbed: u64,
}

#[derive(Clone, Copy)]
enum Fanout {
    /// Tokens travel to the next worker only: full propagation needs ~n
    /// supersteps (a long chain).
    Ring,
    /// Tokens go to every other shard.
    Broadcast,
}

impl Gossip {
    fn new(id: usize, n: usize, fanout: Fanout, seed: impl IntoIterator<Item = u32>) -> Gossip {
        Gossip {
            id,
            tokens: seed.into_iter().collect(),
            forwarded: BTreeSet::new(),
            fanout,
            n,
            absorbed: 0,
        }
    }

    fn route_fresh(&mut self) -> Vec<(WorkerId, u32)> {
        let fresh: Vec<u32> =
            self.tokens.iter().copied().filter(|t| !self.forwarded.contains(t)).collect();
        self.forwarded.extend(fresh.iter().copied());
        let mut out = Vec::new();
        for t in fresh {
            match self.fanout {
                Fanout::Ring => out.push(((self.id + 1) % self.n, t)),
                Fanout::Broadcast => {
                    out.extend((0..self.n).filter(|&w| w != self.id).map(|w| (w, t)))
                }
            }
        }
        out
    }
}

impl Worker for Gossip {
    type Msg = u32;

    fn initial(&mut self) -> Vec<(WorkerId, u32)> {
        self.route_fresh()
    }

    fn superstep(&mut self, inbox: Vec<u32>) -> Vec<(WorkerId, u32)> {
        for t in inbox {
            if !self.tokens.insert(t) {
                self.absorbed += 1;
            }
        }
        self.route_fresh()
    }

    fn absorbed_duplicates(&self) -> u64 {
        self.absorbed
    }
}

fn run_ring(n: usize, mode: ExecutionMode) -> (Vec<Gossip>, dcer_bsp::BspStats) {
    let workers: Vec<Gossip> =
        (0..n).map(|i| Gossip::new(i, n, Fanout::Ring, [i as u32])).collect();
    run_bsp(workers, mode, &CostModel::default())
}

#[test]
fn ring_propagation_needs_n_supersteps() {
    for mode in [ExecutionMode::Simulated, ExecutionMode::Threaded] {
        let n = 24;
        let (workers, stats) = run_ring(n, mode);
        for w in &workers {
            assert_eq!(w.tokens.len(), n, "{mode:?}: every worker saw every token");
        }
        assert!(stats.supersteps >= n, "{mode:?}: chain length forces ~n steps");
        // Each token visits every worker once: n tokens x n hops.
        assert_eq!(stats.batches, (n * n) as u64, "{mode:?}");
        assert_eq!(stats.messages, stats.batches, "{mode:?}: scalar messages");
    }
}

#[test]
fn modes_agree_under_load() {
    let (ws, sim) = run_ring(16, ExecutionMode::Simulated);
    let (wt, thr) = run_ring(16, ExecutionMode::Threaded);
    assert_eq!(sim.batches, thr.batches);
    assert_eq!(sim.bytes, thr.bytes);
    assert_eq!(sim.supersteps, thr.supersteps);
    for (a, b) in ws.iter().zip(&wt) {
        assert_eq!(a.tokens, b.tokens);
    }
}

#[test]
fn message_storm_with_many_threads() {
    // 64 threaded workers, all-to-all broadcast of 8 tokens each: 512
    // distinct tokens, every worker must converge to all of them.
    let n = 64;
    let workers: Vec<Gossip> = (0..n)
        .map(|i| Gossip::new(i, n, Fanout::Broadcast, (0..8).map(|j| (i * 8 + j) as u32)))
        .collect();
    let (workers, stats) = run_bsp(workers, ExecutionMode::Threaded, &CostModel::default());
    for w in &workers {
        assert_eq!(w.tokens.len(), n * 8);
    }
    assert!(stats.batches >= (n * 8 * (n - 1)) as u64);
    assert_eq!(stats.worker_busy_secs.len(), n);
    assert_eq!(stats.shard_bytes.len(), n);
}

#[test]
fn duplicates_absorbed_are_counted() {
    // Broadcast gossip delivers every token to every worker exactly once per
    // forwarding worker; with several seeds in common, recipients absorb
    // duplicates and the runtime reports them.
    let n = 8;
    let workers: Vec<Gossip> =
        (0..n).map(|i| Gossip::new(i, n, Fanout::Broadcast, [0u32, i as u32])).collect();
    let (_, stats) = run_bsp(workers, ExecutionMode::Simulated, &CostModel::default());
    assert!(stats.deduped_facts > 0, "shared token 0 must be absorbed as duplicate");
}

#[test]
fn makespan_is_bounded_by_total_compute_plus_overheads() {
    let (_, stats) = run_ring(12, ExecutionMode::Simulated);
    let overhead = stats.supersteps as f64 * CostModel::default().barrier_secs
        + stats.bytes as f64 * CostModel::default().secs_per_byte;
    assert!(stats.makespan_secs <= stats.total_compute_secs + overhead + 1e-6);
    assert!(stats.makespan_secs >= stats.step_max_secs.iter().sum::<f64>());
}
