//! Cross-executor stats parity: `run_threaded` must account traffic
//! exactly like `run_simulated` for a deterministic workload —
//! `shard_bytes` per destination, `deduped_facts`, and per-step vector
//! shapes included.
//!
//! The workload is a gossip ring: worker `i` starts knowing `{i}` and
//! forwards its full known set to its right neighbor whenever it learns
//! something. Every worker has exactly one upstream sender, so inbox
//! contents — and therefore byte counts and absorbed-duplicate counts —
//! are identical in both execution modes regardless of scheduling.

use dcer_bsp::{run_bsp, BspStats, CostModel, ExecutionMode, Message, Worker, WorkerId};
use std::collections::BTreeSet;
use std::sync::Arc;

#[derive(Clone)]
struct SetMsg(Arc<Vec<u64>>);

impl Message for SetMsg {
    fn size_bytes(&self) -> usize {
        self.0.len() * std::mem::size_of::<u64>()
    }

    fn unit_count(&self) -> usize {
        self.0.len()
    }
}

struct GossipWorker {
    id: WorkerId,
    n: usize,
    known: BTreeSet<u64>,
    absorbed: u64,
}

impl GossipWorker {
    fn send_right(&self) -> Vec<(WorkerId, SetMsg)> {
        let right = (self.id + 1) % self.n;
        vec![(right, SetMsg(Arc::new(self.known.iter().copied().collect())))]
    }
}

impl Worker for GossipWorker {
    type Msg = SetMsg;

    fn initial(&mut self) -> Vec<(WorkerId, SetMsg)> {
        self.send_right()
    }

    fn superstep(&mut self, inbox: Vec<SetMsg>) -> Vec<(WorkerId, SetMsg)> {
        let mut learned = false;
        for msg in inbox {
            for &v in msg.0.iter() {
                if self.known.insert(v) {
                    learned = true;
                } else {
                    self.absorbed += 1;
                }
            }
        }
        if learned {
            self.send_right()
        } else {
            Vec::new()
        }
    }

    fn absorbed_duplicates(&self) -> u64 {
        self.absorbed
    }

    fn snapshot(&mut self) -> Option<SetMsg> {
        Some(SetMsg(Arc::new(self.known.iter().copied().collect())))
    }

    fn restore(&mut self, checkpoint: Option<&SetMsg>) -> Vec<(WorkerId, SetMsg)> {
        self.known = match checkpoint {
            Some(msg) => msg.0.iter().copied().collect(),
            None => BTreeSet::from([self.id as u64]),
        };
        self.send_right()
    }
}

fn ring(n: usize) -> Vec<GossipWorker> {
    (0..n)
        .map(|id| GossipWorker { id, n, known: BTreeSet::from([id as u64]), absorbed: 0 })
        .collect()
}

fn run(n: usize, mode: ExecutionMode) -> (Vec<GossipWorker>, BspStats) {
    run_bsp(ring(n), mode, &CostModel::default())
}

#[test]
fn executors_agree_on_every_deterministic_stat() {
    for n in [2, 3, 5] {
        let (sim_workers, sim) = run(n, ExecutionMode::Simulated);
        let (thr_workers, thr) = run(n, ExecutionMode::Threaded);

        // Both reach the same fixpoint.
        for w in sim_workers.iter().chain(thr_workers.iter()) {
            assert_eq!(w.known.len(), n, "n={n}: everyone learns everything");
        }

        assert_eq!(sim.supersteps, thr.supersteps, "n={n}: supersteps");
        assert_eq!(sim.batches, thr.batches, "n={n}: batches");
        assert_eq!(sim.messages, thr.messages, "n={n}: messages");
        assert_eq!(sim.bytes, thr.bytes, "n={n}: bytes");
        assert_eq!(sim.shard_bytes, thr.shard_bytes, "n={n}: per-shard receive bytes");
        assert_eq!(sim.deduped_facts, thr.deduped_facts, "n={n}: absorbed duplicates");

        // Per-step vectors line up with the superstep count in both modes
        // (the threaded executor merges per-thread logs by step index).
        for (label, s) in [("sim", &sim), ("thr", &thr)] {
            assert_eq!(s.step_max_secs.len(), s.supersteps, "n={n} {label}");
            assert_eq!(s.step_total_secs.len(), s.supersteps, "n={n} {label}");
            assert_eq!(s.worker_busy_secs.len(), n, "n={n} {label}");
            assert_eq!(s.shard_bytes.len(), n, "n={n} {label}");
            for step in &s.step_max_secs {
                assert!(step.is_finite() && *step >= 0.0, "n={n} {label}");
            }
        }

        // Spot-check against the closed form: in a ring of n, each of the
        // n workers sends at supersteps 0..n-1 a set of min(step+1, n)
        // values, then one final all-known broadcast round quiesces.
        let expected_units: u64 =
            (0..n as u64).map(|s| (s + 1).min(n as u64) * n as u64).sum::<u64>();
        assert_eq!(sim.messages, expected_units, "n={n}: unit count closed form");
    }
}

/// Fault-injection parity: under the same (non-aborting) `FaultPlan` —
/// one crash, one crash-equivalent stall, a dropped edge, a delayed edge,
/// a duplicated edge and a sub-timeout stall — both executors must report
/// identical `BspStats` *including every recovery counter*, because all
/// fault decisions are keyed deterministically by `(worker, step)` /
/// `(from, to, step)`, never by scheduling.
#[test]
fn executors_agree_on_recovery_stats_under_the_same_fault_plan() {
    use dcer_bsp::{run_bsp_with, FaultConfig, FaultPlan};
    let n = 5;
    // Every edge fault is placed on a step where the ring actually sends
    // on that edge (worker 0 learns {4} at step 1, so 0->1 carries a batch
    // at step 1 even though its step-0 batch was dropped).
    let plan = FaultPlan::parse(
        "crash 2@1; drop 0->1@0; delay 0->1@1+2; dup 3->4@0; stall 4@2=10; stall 1@3=500",
    )
    .unwrap();
    let cfg = FaultConfig::with_plan(plan);
    let run_ft = |mode| run_bsp_with(ring(n), mode, &CostModel::default(), &cfg).unwrap();
    let (sim_workers, sim) = run_ft(ExecutionMode::Simulated);
    let (thr_workers, thr) = run_ft(ExecutionMode::Threaded);

    // Both still reach the gossip fixpoint despite the faults.
    for w in sim_workers.iter().chain(thr_workers.iter()) {
        assert_eq!(w.known.len(), n, "everyone learns everything despite faults");
    }

    assert_eq!(sim.recovery, thr.recovery, "recovery counters must be mode-independent");
    assert_eq!(sim.recovery.crashes, 1);
    assert_eq!(sim.recovery.stalls, 2, "one slowdown stall + one timeout stall");
    assert_eq!(sim.recovery.recoveries, 2, "crash + past-timeout stall both restore");
    assert_eq!(sim.recovery.dropped_batches, 1);
    // Two delays: worker 0's fresh step-1 batch, plus the step-0 batch
    // whose retransmission re-enters the injector at step 1 and is delayed
    // again (retries are re-classified; delays are not).
    assert_eq!(sim.recovery.delayed_batches, 2);
    assert_eq!(sim.recovery.duplicated_batches, 1);
    assert!(sim.recovery.retries >= 1, "the dropped batch must be retransmitted");
    assert!(sim.recovery.checkpoints >= 5, "every worker checkpoints every superstep");
    assert!(sim.recovery.replayed_batches >= 1, "recovery replays logged deliveries");

    // The deterministic traffic stats still agree, faults and all.
    assert_eq!(sim.supersteps, thr.supersteps);
    assert_eq!(sim.batches, thr.batches);
    assert_eq!(sim.messages, thr.messages);
    assert_eq!(sim.bytes, thr.bytes);
    assert_eq!(sim.shard_bytes, thr.shard_bytes);
    assert_eq!(sim.deduped_facts, thr.deduped_facts);
}

#[test]
fn empty_fleet_is_identical_across_modes() {
    for mode in [ExecutionMode::Simulated, ExecutionMode::Threaded] {
        let (workers, stats) = run(0, mode);
        assert!(workers.is_empty());
        assert_eq!(stats.supersteps, 0, "{mode:?}: no workers, no supersteps");
        assert_eq!(stats.batches, 0, "{mode:?}");
        assert_eq!(stats.bytes, 0, "{mode:?}");
        assert!(stats.shard_bytes.is_empty(), "{mode:?}");
        assert!(stats.step_max_secs.is_empty(), "{mode:?}");
        assert!(stats.worker_busy_secs.is_empty(), "{mode:?}");
    }
}
