//! Cross-executor *causal edge* parity: for the same deterministic
//! workload, the threaded and simulated executors must emit the identical
//! multiset of flow endpoints — same names, same deterministically derived
//! ids, same begin/end pairing. This is what makes profiles and critical
//! paths comparable across execution modes: `bsp_flow_id` is pure in the
//! routing coordinates `(step, from, to)`, never in scheduling.
//!
//! Lives in its own integration binary because it installs the process
//! global recorder; sharing a binary with other bsp tests would let their
//! concurrent runs leak flow events into the collector under test.

use dcer_bsp::{
    run_bsp_with, CostModel, ExecutionMode, FaultConfig, FaultPlan, Message, Worker, WorkerId,
};
use dcer_obs::{FlowDir, InMemoryCollector};
use std::collections::BTreeSet;
use std::sync::Arc;

#[derive(Clone)]
struct SetMsg(Arc<Vec<u64>>);

impl Message for SetMsg {
    fn size_bytes(&self) -> usize {
        self.0.len() * std::mem::size_of::<u64>()
    }

    fn unit_count(&self) -> usize {
        self.0.len()
    }
}

/// The gossip ring from `tests/parity.rs`: worker `i` forwards its known
/// set to its right neighbor whenever it learns something, so the delivery
/// schedule — and therefore the flow-edge set — is fully deterministic.
struct GossipWorker {
    id: WorkerId,
    n: usize,
    known: BTreeSet<u64>,
}

impl GossipWorker {
    fn send_right(&self) -> Vec<(WorkerId, SetMsg)> {
        let right = (self.id + 1) % self.n;
        vec![(right, SetMsg(Arc::new(self.known.iter().copied().collect())))]
    }
}

impl Worker for GossipWorker {
    type Msg = SetMsg;

    fn initial(&mut self) -> Vec<(WorkerId, SetMsg)> {
        self.send_right()
    }

    fn superstep(&mut self, inbox: Vec<SetMsg>) -> Vec<(WorkerId, SetMsg)> {
        let mut learned = false;
        for msg in inbox {
            for &v in msg.0.iter() {
                learned |= self.known.insert(v);
            }
        }
        if learned {
            self.send_right()
        } else {
            Vec::new()
        }
    }

    fn snapshot(&mut self) -> Option<SetMsg> {
        Some(SetMsg(Arc::new(self.known.iter().copied().collect())))
    }

    fn restore(&mut self, checkpoint: Option<&SetMsg>) -> Vec<(WorkerId, SetMsg)> {
        self.known = match checkpoint {
            Some(msg) => msg.0.iter().copied().collect(),
            None => BTreeSet::from([self.id as u64]),
        };
        self.send_right()
    }
}

fn ring(n: usize) -> Vec<GossipWorker> {
    (0..n).map(|id| GossipWorker { id, n, known: BTreeSet::from([id as u64]) }).collect()
}

/// Run one mode under a fresh collector and return its flow endpoints as a
/// sorted multiset of `(name, id, is_begin)` — track ids and timestamps are
/// scheduling-dependent and deliberately excluded.
fn collect_flows(n: usize, mode: ExecutionMode, cfg: &FaultConfig) -> Vec<(String, u64, bool)> {
    let collector = Arc::new(InMemoryCollector::new());
    dcer_obs::install(collector.clone());
    let result = run_bsp_with(ring(n), mode, &CostModel::default(), cfg);
    dcer_obs::uninstall();
    result.expect("run must not abort");
    let mut flows: Vec<(String, u64, bool)> = collector
        .flows()
        .iter()
        .map(|f| (f.name.to_string(), f.id, f.dir == FlowDir::Begin))
        .collect();
    flows.sort();
    flows
}

#[test]
fn flow_parity() {
    let n = 5;
    let plain = FaultConfig::default();
    // A non-aborting plan exercising delayed, duplicated and retried
    // deposits — the paths where deposit-time step, not routing-time step,
    // must key the flow id in both executors.
    let faulted = FaultConfig::with_plan(
        FaultPlan::parse("drop 0->1@0; delay 0->1@1+2; dup 3->4@0").expect("valid plan"),
    );
    for cfg in [&plain, &faulted] {
        let sim = collect_flows(n, ExecutionMode::Simulated, cfg);
        let thr = collect_flows(n, ExecutionMode::Threaded, cfg);
        assert_eq!(sim, thr, "executors must emit the identical flow-edge multiset");

        // Sanity on the shared set: one spawn edge per worker (begin on the
        // caller, end on the worker), and every send edge begin/end paired.
        let spawn_begins =
            sim.iter().filter(|(name, _, begin)| name == "bsp.spawn" && *begin).count();
        assert_eq!(spawn_begins, n, "one spawn-flow begin per worker");
        let sends: Vec<&(String, u64, bool)> =
            sim.iter().filter(|(name, _, _)| name == "bsp.send").collect();
        assert!(!sends.is_empty(), "the gossip ring must exchange batches");
        let begins: BTreeSet<u64> =
            sends.iter().filter(|(_, _, b)| *b).map(|(_, id, _)| *id).collect();
        let ends: BTreeSet<u64> =
            sends.iter().filter(|(_, _, b)| !*b).map(|(_, id, _)| *id).collect();
        assert_eq!(begins, ends, "every send edge must have both endpoints");
    }
}
