//! Deterministic fault injection for the BSP runtime.
//!
//! A [`FaultPlan`] is a finite set of fault directives keyed by worker id
//! and superstep (and, for network faults, the `from -> to` edge). Both
//! executors consult the plan at the same decision points — compute entry
//! for crash/stall faults, message deposit for drop/delay/duplicate faults
//! — so a plan produces the *same* fault schedule and the same
//! [`RecoveryStats`] under simulated and threaded execution, which is what
//! makes recovery behaviour testable for stat parity.
//!
//! Plans are either built programmatically, parsed from the textual
//! grammar (see [`FaultPlan::parse`]), or generated from a seed with
//! [`FaultPlan::random`] for chaos-matrix style sweeps.

use serde::Serialize;
use std::path::PathBuf;

use crate::WorkerId;

/// One fault directive. Steps are superstep indices: compute faults
/// (`Crash`, `Stall`) fire when the worker *enters* compute of that step;
/// edge faults fire when a message is deposited during the *exchange* of
/// that step (including retransmissions that land on the step).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Fault {
    /// Worker loses its in-memory state at the start of superstep `step`
    /// and is recovered from its last checkpoint.
    Crash {
        /// The failing worker.
        worker: WorkerId,
        /// The superstep at which it fails.
        step: u64,
    },
    /// The message `from -> to` deposited at `step` is lost; the runtime
    /// retries with exponential backoff (see [`FaultConfig`]).
    Drop {
        /// Sending worker.
        from: WorkerId,
        /// Receiving worker.
        to: WorkerId,
        /// Exchange step of the affected deposit.
        step: u64,
    },
    /// The message `from -> to` deposited at `step` arrives `steps`
    /// supersteps late.
    Delay {
        /// Sending worker.
        from: WorkerId,
        /// Receiving worker.
        to: WorkerId,
        /// Exchange step of the affected deposit.
        step: u64,
        /// Extra supersteps before delivery (≥ 1).
        steps: u64,
    },
    /// The message `from -> to` deposited at `step` is delivered twice
    /// (absorbed by recipient-side dedup — replay is idempotent).
    Duplicate {
        /// Sending worker.
        from: WorkerId,
        /// Receiving worker.
        to: WorkerId,
        /// Exchange step of the affected deposit.
        step: u64,
    },
    /// Worker is `millis` ms slower in superstep `step`. Stalls beyond
    /// [`FaultConfig::stall_timeout_secs`] are treated as failures and
    /// recovered like a crash; shorter ones only stretch the makespan.
    Stall {
        /// The stalling worker.
        worker: WorkerId,
        /// The superstep it stalls in.
        step: u64,
        /// Stall duration in milliseconds.
        millis: u64,
    },
}

/// Injector verdict for one message deposit (first matching edge fault in
/// the plan wins; no match means normal delivery).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeFault {
    /// Deliver normally.
    Deliver,
    /// Lose the message (subject to bounded retry).
    Drop,
    /// Deliver this many supersteps late.
    Delay(u64),
    /// Deliver twice.
    Duplicate,
}

/// A deterministic schedule of faults for one BSP run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// The empty plan: no faults.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Whether the plan contains no faults.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Number of directives.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// The directives, in plan order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Append a directive (builder style).
    pub fn with(mut self, fault: Fault) -> FaultPlan {
        self.faults.push(fault);
        self
    }

    /// Shorthand: crash `worker` at `step`.
    pub fn crash(worker: WorkerId, step: u64) -> FaultPlan {
        FaultPlan::none().with(Fault::Crash { worker, step })
    }

    /// Whether `worker` crashes entering superstep `step`.
    pub fn crashed(&self, worker: WorkerId, step: u64) -> bool {
        self.faults
            .iter()
            .any(|f| matches!(*f, Fault::Crash { worker: w, step: s } if w == worker && s == step))
    }

    /// Stall duration for `worker` at `step`, if any.
    pub fn stall_millis(&self, worker: WorkerId, step: u64) -> Option<u64> {
        self.faults.iter().find_map(|f| match *f {
            Fault::Stall { worker: w, step: s, millis } if w == worker && s == step => Some(millis),
            _ => None,
        })
    }

    /// Injector verdict for a deposit on `from -> to` during the exchange
    /// of `step`.
    pub fn edge(&self, from: WorkerId, to: WorkerId, step: u64) -> EdgeFault {
        for f in &self.faults {
            match *f {
                Fault::Drop { from: a, to: b, step: s } if a == from && b == to && s == step => {
                    return EdgeFault::Drop;
                }
                Fault::Delay { from: a, to: b, step: s, steps }
                    if a == from && b == to && s == step =>
                {
                    return EdgeFault::Delay(steps.max(1));
                }
                Fault::Duplicate { from: a, to: b, step: s }
                    if a == from && b == to && s == step =>
                {
                    return EdgeFault::Duplicate;
                }
                _ => {}
            }
        }
        EdgeFault::Deliver
    }

    /// Parse the textual grammar (used by `experiments --fault-plan`):
    ///
    /// ```text
    /// plan      := directive (';' directive)*
    /// directive := 'crash' W '@' K            crash worker W at superstep K
    ///            | 'drop'  W '->' W '@' K     lose the W->W deposit at K
    ///            | 'delay' W '->' W '@' K '+' D   deliver it D steps late
    ///            | 'dup'   W '->' W '@' K     deliver it twice
    ///            | 'stall' W '@' K '=' MS     stall worker W at K for MS ms
    /// ```
    ///
    /// ```
    /// use dcer_bsp::FaultPlan;
    /// let p = FaultPlan::parse("crash 2@1; drop 0->1@2; delay 1->3@2+2").unwrap();
    /// assert_eq!(p.len(), 3);
    /// assert!(p.crashed(2, 1));
    /// ```
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::none();
        for raw in text.split([';', '\n']) {
            let d = raw.trim();
            if d.is_empty() {
                continue;
            }
            let (kind, rest) = d
                .split_once(char::is_whitespace)
                .ok_or_else(|| format!("fault directive `{d}` has no arguments"))?;
            let rest: String = rest.chars().filter(|c| !c.is_whitespace()).collect();
            let num = |s: &str, what: &str| -> Result<u64, String> {
                s.parse::<u64>().map_err(|_| format!("bad {what} `{s}` in directive `{d}`"))
            };
            let edge = |s: &str| -> Result<(WorkerId, WorkerId, String), String> {
                let (from, tail) = s
                    .split_once("->")
                    .ok_or_else(|| format!("directive `{d}` needs `from->to@step`"))?;
                let (to, step) =
                    tail.split_once('@').ok_or_else(|| format!("directive `{d}` needs `@step`"))?;
                Ok((num(from, "worker")? as WorkerId, num(to, "worker")? as WorkerId, step.into()))
            };
            let fault = match kind {
                "crash" => {
                    let (w, k) = rest
                        .split_once('@')
                        .ok_or_else(|| format!("directive `{d}` needs `worker@step`"))?;
                    Fault::Crash { worker: num(w, "worker")? as WorkerId, step: num(k, "step")? }
                }
                "stall" => {
                    let (w, tail) = rest
                        .split_once('@')
                        .ok_or_else(|| format!("directive `{d}` needs `worker@step=millis`"))?;
                    let (k, ms) = tail
                        .split_once('=')
                        .ok_or_else(|| format!("directive `{d}` needs `=millis`"))?;
                    Fault::Stall {
                        worker: num(w, "worker")? as WorkerId,
                        step: num(k, "step")?,
                        millis: num(ms, "millis")?,
                    }
                }
                "drop" => {
                    let (from, to, step) = edge(&rest)?;
                    Fault::Drop { from, to, step: num(&step, "step")? }
                }
                "dup" => {
                    let (from, to, step) = edge(&rest)?;
                    Fault::Duplicate { from, to, step: num(&step, "step")? }
                }
                "delay" => {
                    let (from, to, tail) = edge(&rest)?;
                    let (step, extra) = tail
                        .split_once('+')
                        .ok_or_else(|| format!("directive `{d}` needs `+steps`"))?;
                    Fault::Delay {
                        from,
                        to,
                        step: num(step, "step")?,
                        steps: num(extra, "steps")?.max(1),
                    }
                }
                other => return Err(format!("unknown fault kind `{other}` in `{d}`")),
            };
            plan.faults.push(fault);
        }
        Ok(plan)
    }

    /// Seed-driven plan generation for chaos sweeps: `count` faults drawn
    /// uniformly over kinds, `workers` workers and supersteps `0..steps`.
    /// The same seed always yields the same plan.
    pub fn random(seed: u64, workers: usize, steps: u64, count: usize) -> FaultPlan {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let steps = steps.max(1);
        let mut plan = FaultPlan::none();
        for _ in 0..count {
            let step = rng.random_range(0..steps);
            let worker = rng.random_range(0..workers.max(1));
            let kind = if workers < 2 { 0 } else { rng.random_range(0..5u32) };
            let mut peer = || {
                let mut p = rng.random_range(0..workers);
                if p == worker {
                    p = (p + 1) % workers;
                }
                p
            };
            let fault = match kind {
                0 => Fault::Crash { worker, step },
                1 => Fault::Drop { from: worker, to: peer(), step },
                2 => Fault::Delay { from: worker, to: peer(), step, steps: 1 + step % 2 },
                3 => Fault::Duplicate { from: worker, to: peer(), step },
                _ => Fault::Stall { worker, step, millis: 20 + 60 * (step % 3) },
            };
            plan.faults.push(fault);
        }
        plan
    }
}

impl std::fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, fault) in self.faults.iter().enumerate() {
            if i > 0 {
                f.write_str("; ")?;
            }
            match *fault {
                Fault::Crash { worker, step } => write!(f, "crash {worker}@{step}")?,
                Fault::Drop { from, to, step } => write!(f, "drop {from}->{to}@{step}")?,
                Fault::Delay { from, to, step, steps } => {
                    write!(f, "delay {from}->{to}@{step}+{steps}")?
                }
                Fault::Duplicate { from, to, step } => write!(f, "dup {from}->{to}@{step}")?,
                Fault::Stall { worker, step, millis } => {
                    write!(f, "stall {worker}@{step}={millis}")?
                }
            }
        }
        Ok(())
    }
}

/// Fault-tolerance configuration for one BSP run: the fault schedule plus
/// the checkpoint/retry policy. The default configuration is *inactive*
/// (no plan, no checkpoints) and adds zero overhead to the exchange path.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// The fault schedule to inject.
    pub plan: FaultPlan,
    /// Checkpoint every `interval` supersteps (`0` disables checkpointing;
    /// recovery then rebuilds from the worker's durable inputs and replays
    /// every exchange).
    pub checkpoint_interval: u64,
    /// Retransmissions allowed per dropped message before the run aborts
    /// (and the pipeline degrades to a fault-free rerun).
    pub max_retries: u32,
    /// Base retransmission backoff in supersteps; the r-th retry waits
    /// `base << r` steps (exponential).
    pub retry_backoff_steps: u64,
    /// A stall longer than this is treated as a worker failure and
    /// recovered from checkpoint; shorter stalls only slow the step.
    pub stall_timeout_secs: f64,
    /// Also spill checkpoints to `<dir>/worker-<i>.ckpt` for message types
    /// that implement [`crate::Message::encode`].
    pub checkpoint_dir: Option<PathBuf>,
}

impl Default for FaultConfig {
    /// The inactive configuration ([`FaultConfig::none`]), *not* all-zero
    /// fields — the retry/backoff/timeout policy keeps its sensible values
    /// so turning on a plan later behaves as documented.
    fn default() -> FaultConfig {
        FaultConfig::none()
    }
}

impl FaultConfig {
    /// Inactive configuration: no faults, no checkpoints, zero overhead.
    pub fn none() -> FaultConfig {
        FaultConfig {
            plan: FaultPlan::none(),
            checkpoint_interval: 0,
            max_retries: 3,
            retry_backoff_steps: 1,
            stall_timeout_secs: 0.05,
            checkpoint_dir: None,
        }
    }

    /// Checkpoint every superstep, no injected faults — the overhead
    /// configuration the `bsp_exchange` bench guards.
    pub fn checkpointing() -> FaultConfig {
        FaultConfig { checkpoint_interval: 1, ..FaultConfig::none() }
    }

    /// Checkpoint every superstep and inject `plan`.
    pub fn with_plan(plan: FaultPlan) -> FaultConfig {
        FaultConfig { plan, checkpoint_interval: 1, ..FaultConfig::none() }
    }

    /// Whether this configuration changes runtime behaviour at all
    /// (inactive configs take the legacy zero-overhead path).
    pub fn active(&self) -> bool {
        self.checkpoint_interval > 0 || !self.plan.is_empty()
    }
}

/// Counters of the fault-tolerance layer, nested in
/// [`crate::BspStats::recovery`]. Every field is driven by the plan and
/// the deterministic retry policy, so the struct is identical across
/// execution modes for the same plan (pinned by `tests/parity.rs`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct RecoveryStats {
    /// Checkpoints taken at superstep boundaries.
    pub checkpoints: u64,
    /// Logical units (facts) captured across all checkpoints.
    pub checkpoint_facts: u64,
    /// Bytes captured across all checkpoints.
    pub checkpoint_bytes: u64,
    /// Injected crash faults.
    pub crashes: u64,
    /// Injected stall faults (both slow-step and crash-equivalent).
    pub stalls: u64,
    /// Recovery invocations (crashes + stalls past the timeout).
    pub recoveries: u64,
    /// Logged batches replayed to recovered workers.
    pub replayed_batches: u64,
    /// Logical units replayed to recovered workers.
    pub replayed_facts: u64,
    /// Deposits lost to drop faults (each retransmission that is dropped
    /// again counts once more).
    pub dropped_batches: u64,
    /// Retransmission attempts performed.
    pub retries: u64,
    /// Deposits delivered late by delay faults.
    pub delayed_batches: u64,
    /// Deposits duplicated by duplicate faults.
    pub duplicated_batches: u64,
}

impl RecoveryStats {
    /// Pointwise sum (merging per-thread logs).
    pub fn add(&mut self, other: &RecoveryStats) {
        self.checkpoints += other.checkpoints;
        self.checkpoint_facts += other.checkpoint_facts;
        self.checkpoint_bytes += other.checkpoint_bytes;
        self.crashes += other.crashes;
        self.stalls += other.stalls;
        self.recoveries += other.recoveries;
        self.replayed_batches += other.replayed_batches;
        self.replayed_facts += other.replayed_facts;
        self.dropped_batches += other.dropped_batches;
        self.retries += other.retries;
        self.delayed_batches += other.delayed_batches;
        self.duplicated_batches += other.duplicated_batches;
    }

    /// Publish into the global [`dcer_obs`] registry under
    /// `bsp.recovery.*` (no-op unless a recorder is installed).
    pub fn publish(&self) {
        if !dcer_obs::enabled() {
            return;
        }
        dcer_obs::counter_add("bsp.recovery.checkpoints", self.checkpoints);
        dcer_obs::counter_add("bsp.recovery.checkpoint_facts", self.checkpoint_facts);
        dcer_obs::counter_add("bsp.recovery.checkpoint_bytes", self.checkpoint_bytes);
        dcer_obs::counter_add("bsp.recovery.crashes", self.crashes);
        dcer_obs::counter_add("bsp.recovery.stalls", self.stalls);
        dcer_obs::counter_add("bsp.recovery.recoveries", self.recoveries);
        dcer_obs::counter_add("bsp.recovery.replayed_batches", self.replayed_batches);
        dcer_obs::counter_add("bsp.recovery.replayed_facts", self.replayed_facts);
        dcer_obs::counter_add("bsp.recovery.dropped_batches", self.dropped_batches);
        dcer_obs::counter_add("bsp.recovery.retries", self.retries);
        dcer_obs::counter_add("bsp.recovery.delayed_batches", self.delayed_batches);
        dcer_obs::counter_add("bsp.recovery.duplicated_batches", self.duplicated_batches);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_every_directive_kind() {
        let p =
            FaultPlan::parse("crash 2@1; drop 0->1@2; delay 1->3@2+2; dup 0->2@1; stall 3@2=80")
                .unwrap();
        assert_eq!(p.len(), 5);
        assert!(p.crashed(2, 1));
        assert!(!p.crashed(2, 2));
        assert_eq!(p.edge(0, 1, 2), EdgeFault::Drop);
        assert_eq!(p.edge(1, 3, 2), EdgeFault::Delay(2));
        assert_eq!(p.edge(0, 2, 1), EdgeFault::Duplicate);
        assert_eq!(p.edge(0, 1, 0), EdgeFault::Deliver);
        assert_eq!(p.stall_millis(3, 2), Some(80));
        assert_eq!(p.stall_millis(3, 1), None);
    }

    #[test]
    fn parse_display_round_trips() {
        let text = "crash 2@1; drop 0->1@2; delay 1->3@2+2; dup 0->2@1; stall 3@2=80";
        let p = FaultPlan::parse(text).unwrap();
        assert_eq!(p.to_string(), text);
        assert_eq!(FaultPlan::parse(&p.to_string()).unwrap(), p);
    }

    #[test]
    fn parse_tolerates_whitespace_and_newlines() {
        let p = FaultPlan::parse("  crash  1@0 \n drop 0 -> 1 @ 3 ;\n").unwrap();
        assert_eq!(p.len(), 2);
        assert!(p.crashed(1, 0));
        assert_eq!(p.edge(0, 1, 3), EdgeFault::Drop);
    }

    #[test]
    fn parse_rejects_malformed_directives() {
        for bad in ["crash", "crash 1", "boom 1@2", "drop 0-1@2", "delay 0->1@2", "stall 1@2"] {
            assert!(FaultPlan::parse(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn random_is_seed_deterministic() {
        let a = FaultPlan::random(42, 5, 4, 8);
        let b = FaultPlan::random(42, 5, 4, 8);
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
        let c = FaultPlan::random(43, 5, 4, 8);
        assert_ne!(a, c, "different seeds should give different plans");
    }

    #[test]
    fn random_single_worker_only_crashes() {
        for f in FaultPlan::random(7, 1, 3, 6).faults() {
            assert!(matches!(f, Fault::Crash { worker: 0, .. }), "{f:?}");
        }
    }

    #[test]
    fn inactive_config_is_default() {
        assert!(!FaultConfig::none().active());
        assert!(!FaultConfig::default().active());
        assert_eq!(FaultConfig::default().max_retries, 3, "default keeps the real policy");
        assert!(FaultConfig::checkpointing().active());
        assert!(FaultConfig::with_plan(FaultPlan::crash(0, 1)).active());
    }

    #[test]
    fn first_matching_edge_fault_wins() {
        let p = FaultPlan::none()
            .with(Fault::Drop { from: 0, to: 1, step: 2 })
            .with(Fault::Duplicate { from: 0, to: 1, step: 2 });
        assert_eq!(p.edge(0, 1, 2), EdgeFault::Drop);
    }
}
