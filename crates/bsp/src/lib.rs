//! A Bulk Synchronous Parallel (BSP \[63\]) runtime for the fixpoint model of
//! Section III-B: `n` workers proceeding in supersteps until global
//! quiescence (`ΔΓᵢ = ∅` for all `i`).
//!
//! ## Sharded exchange
//!
//! Unlike the classical formulation where a master `P₀` receives, unions and
//! re-routes every fact, workers here route *directly by destination shard*:
//! [`Worker::superstep`] returns `(recipient, message)` pairs and the runtime
//! deposits each message straight into the recipient's mailbox. The
//! coordinator role is reduced to what `P₀` fundamentally must do — detect
//! global quiescence (a superstep that delivered nothing) — so no single
//! process is a serialization point for message payloads.
//!
//! Messages implement [`Message`] and are expected to be *cheaply shareable*:
//! routing one batch to `k` recipients costs `k` clones of the message
//! handle (an `Arc` bump for `DeltaBatch`-style types), never a deep copy of
//! the payload.
//!
//! ## Execution modes (see `DESIGN.md` §5)
//!
//! - [`ExecutionMode::Threaded`]: every worker is a real OS thread; mailboxes
//!   are shared-memory queues synchronized by per-superstep barriers —
//!   validates the algorithms under true concurrency.
//! - [`ExecutionMode::Simulated`]: workers run sequentially while the
//!   runtime records each worker's busy time per superstep; the *simulated
//!   parallel time* (makespan) is `Σ_steps max_worker(busy)` plus a
//!   configurable per-byte communication cost. This measures exactly the
//!   quantities parallel scalability (Theorem 7) is about, independent of
//!   how many physical cores the host has.

use serde::Serialize;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};
use std::time::Instant;

/// Worker index within a run.
pub type WorkerId = usize;

/// A routable message: cheap to clone (hand an `Arc`-backed batch to `k`
/// recipients with `k` pointer bumps) and sized exactly for communication
/// accounting.
pub trait Message: Send + Clone + 'static {
    /// Exact wire size of the payload in bytes.
    fn size_bytes(&self) -> usize;

    /// Number of logical units (facts) carried; `1` for scalar messages.
    fn unit_count(&self) -> usize {
        1
    }
}

macro_rules! scalar_message {
    ($($t:ty),*) => {$(
        impl Message for $t {
            fn size_bytes(&self) -> usize {
                std::mem::size_of::<$t>()
            }
        }
    )*};
}

scalar_message!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A BSP worker. `initial` is the partial-evaluation superstep (`A` in the
/// paper); `superstep` is the incremental step (`A_Δ`). Both return messages
/// *already routed* to their destination shards; deliveries to `self` are
/// filtered by the runtime.
pub trait Worker: Send {
    /// The message type exchanged between shards.
    type Msg: Message;

    /// Superstep 0: compute local results from the worker's fragment and
    /// route them.
    fn initial(&mut self) -> Vec<(WorkerId, Self::Msg)>;

    /// Superstep r ≥ 1: incorporate delivered messages, route new local
    /// results. Returning nothing signals local quiescence.
    fn superstep(&mut self, inbox: Vec<Self::Msg>) -> Vec<(WorkerId, Self::Msg)>;

    /// Units received over the whole run that the worker already knew
    /// (duplicates absorbed by local dedup). Read once at the end of the
    /// run for [`BspStats::deduped_facts`].
    fn absorbed_duplicates(&self) -> u64 {
        0
    }
}

/// How to execute the workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionMode {
    /// Sequential execution with per-worker time accounting (simulated
    /// cluster).
    Simulated,
    /// One OS thread per worker.
    Threaded,
}

/// Cost model for the simulated cluster.
///
/// ```
/// let cost = dcer_bsp::CostModel::default();
/// // 8e-8 s/B = 12.5 MB/s = 1e8 bit/s = 100 Mbit/s.
/// assert!((cost.secs_per_byte - 8e-8).abs() < 1e-20);
/// assert!((1.0 / cost.secs_per_byte * 8.0 - 100e6).abs() < 1e-3);
/// assert!((cost.barrier_secs - 1e-4).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Serialize)]
pub struct CostModel {
    /// Seconds per byte routed between workers. The default `8e-8` s/B is
    /// 12.5 MB/s ≈ 100 Mbit/s — the network of the paper's evaluation
    /// cluster. Zero ignores communication.
    pub secs_per_byte: f64,
    /// Fixed per-superstep synchronization barrier cost in seconds.
    pub barrier_secs: f64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel { secs_per_byte: 8e-8, barrier_secs: 1e-4 }
    }
}

/// Statistics of one BSP run.
#[derive(Debug, Clone, Default, Serialize)]
pub struct BspStats {
    /// Number of supersteps executed (including superstep 0).
    pub supersteps: usize,
    /// Batches (messages) delivered worker→worker.
    pub batches: u64,
    /// Logical units (facts) delivered: Σ `unit_count` over deliveries.
    pub messages: u64,
    /// Total bytes delivered (per [`Message::size_bytes`]).
    pub bytes: u64,
    /// Bytes received per destination shard.
    pub shard_bytes: Vec<u64>,
    /// Units delivered that recipients already knew (absorbed duplicates).
    pub deduped_facts: u64,
    /// Per superstep: the maximum single-worker busy time (seconds).
    pub step_max_secs: Vec<f64>,
    /// Per superstep: the sum of worker busy times (seconds).
    pub step_total_secs: Vec<f64>,
    /// Per worker: total busy seconds across supersteps.
    pub worker_busy_secs: Vec<f64>,
    /// Simulated parallel time: Σ max-per-step + communication + barriers.
    pub makespan_secs: f64,
    /// Total compute across all workers (the sequential-equivalent work).
    pub total_compute_secs: f64,
    /// Wall-clock time of the whole run.
    pub wall_secs: f64,
}

impl BspStats {
    fn new(n: usize) -> BspStats {
        BspStats { worker_busy_secs: vec![0.0; n], shard_bytes: vec![0; n], ..Default::default() }
    }

    /// Publish this run's aggregates into the global [`dcer_obs`] registry
    /// (no-op unless a recorder is installed). Scalars become `bsp.*`
    /// counters/gauges; per-shard series carry the shard index as label.
    pub fn publish(&self) {
        if !dcer_obs::enabled() {
            return;
        }
        dcer_obs::counter_add("bsp.supersteps", self.supersteps as u64);
        dcer_obs::counter_add("bsp.batches", self.batches);
        dcer_obs::counter_add("bsp.messages", self.messages);
        dcer_obs::counter_add("bsp.bytes", self.bytes);
        dcer_obs::counter_add("bsp.deduped_facts", self.deduped_facts);
        dcer_obs::gauge_set("bsp.makespan_secs", self.makespan_secs);
        dcer_obs::gauge_set("bsp.total_compute_secs", self.total_compute_secs);
        dcer_obs::gauge_set("bsp.wall_secs", self.wall_secs);
        for (i, &b) in self.shard_bytes.iter().enumerate() {
            dcer_obs::counter_add_labeled("bsp.shard_bytes", i as u32, b);
        }
        for (i, &s) in self.worker_busy_secs.iter().enumerate() {
            dcer_obs::gauge_set_labeled("bsp.worker_busy_secs", i as u32, s);
        }
        for &m in &self.step_max_secs {
            dcer_obs::histogram_record("bsp.step_max_us", (m * 1e6) as u64);
        }
    }

    fn account_step(&mut self, cost: &CostModel, durations: &[f64], step_bytes: u64) {
        let max = durations.iter().copied().fold(0.0, f64::max);
        let total: f64 = durations.iter().sum();
        self.step_max_secs.push(max);
        self.step_total_secs.push(total);
        for (w, d) in durations.iter().enumerate() {
            self.worker_busy_secs[w] += d;
        }
        self.supersteps += 1;
        self.makespan_secs += max + cost.barrier_secs + step_bytes as f64 * cost.secs_per_byte;
        self.total_compute_secs += total;
    }
}

/// Run a BSP computation to global quiescence. Returns the workers (with
/// their final state) and the run statistics.
pub fn run_bsp<W: Worker>(
    workers: Vec<W>,
    mode: ExecutionMode,
    cost: &CostModel,
) -> (Vec<W>, BspStats) {
    if workers.is_empty() {
        // Without this, the simulated loop would still account one empty
        // superstep while the threaded path spawns nothing — the one stats
        // divergence between the executors.
        return (workers, BspStats::new(0));
    }
    let (workers, stats) = match mode {
        ExecutionMode::Simulated => run_simulated(workers, cost),
        ExecutionMode::Threaded => run_threaded(workers, cost),
    };
    stats.publish();
    (workers, stats)
}

/// The phase-span name for a superstep: superstep 0 runs the partial
/// evaluation `A` ("deduce"), later supersteps run `A_Δ` ("incdeduce").
fn step_span_name(first: bool) -> &'static str {
    if first {
        "deduce"
    } else {
        "incdeduce"
    }
}

fn run_simulated<W: Worker>(mut workers: Vec<W>, cost: &CostModel) -> (Vec<W>, BspStats) {
    let n = workers.len();
    let wall = Instant::now();
    let mut stats = BspStats::new(n);
    // Virtual trace tracks: the simulated cluster runs on one OS thread,
    // but each worker still gets its own timeline in the exported trace.
    let tracks: Vec<dcer_obs::TrackId> = if dcer_obs::enabled() {
        (0..n).map(|i| dcer_obs::alloc_track(&format!("worker-{i}"))).collect()
    } else {
        vec![dcer_obs::TrackId::UNTRACKED; n]
    };
    let mut inboxes: Vec<Vec<W::Msg>> = (0..n).map(|_| Vec::new()).collect();
    let mut first = true;
    let mut step = 0u64;
    loop {
        let mut durations = vec![0.0f64; n];
        let mut routed: Vec<(WorkerId, WorkerId, W::Msg)> = Vec::new();
        for (i, w) in workers.iter_mut().enumerate() {
            let inbox = std::mem::take(&mut inboxes[i]);
            let span = dcer_obs::span_on(step_span_name(first), tracks[i]).with_arg("step", step);
            let t0 = Instant::now();
            let out = if first { w.initial() } else { w.superstep(inbox) };
            durations[i] = t0.elapsed().as_secs_f64();
            drop(span);
            routed.extend(out.into_iter().map(|(to, m)| (i, to, m)));
        }
        first = false;
        let exchange = dcer_obs::span("exchange").with_arg("step", step);
        let mut step_bytes = 0u64;
        let mut any = false;
        for (from, to, msg) in routed {
            if to == from {
                continue; // self-routes are free and filtered
            }
            assert!(to < n, "routed to nonexistent shard {to}");
            let b = msg.size_bytes() as u64;
            step_bytes += b;
            stats.bytes += b;
            stats.shard_bytes[to] += b;
            stats.batches += 1;
            stats.messages += msg.unit_count() as u64;
            dcer_obs::histogram_record("bsp.batch_bytes", b);
            inboxes[to].push(msg);
            any = true;
        }
        dcer_obs::histogram_record("bsp.step_bytes", step_bytes);
        drop(exchange);
        stats.account_step(cost, &durations, step_bytes);
        step += 1;
        if !any {
            break;
        }
    }
    stats.deduped_facts = workers.iter().map(|w| w.absorbed_duplicates()).sum();
    stats.wall_secs = wall.elapsed().as_secs_f64();
    (workers, stats)
}

/// Per-thread measurements, merged into [`BspStats`] after the join.
#[derive(Default)]
struct ShardLog {
    compute_secs: Vec<f64>,
    recv_bytes_per_step: Vec<u64>,
    recv_bytes: u64,
    sent_batches: u64,
    sent_units: u64,
    absorbed: u64,
}

fn run_threaded<W: Worker>(workers: Vec<W>, cost: &CostModel) -> (Vec<W>, BspStats) {
    let n = workers.len();
    let wall = Instant::now();

    // Sharded mailboxes: worker threads deposit directly into the
    // recipient's slot — no coordinator touches payloads.
    let mailboxes: Vec<Mutex<Vec<W::Msg>>> = (0..n).map(|_| Mutex::new(Vec::new())).collect();
    let barrier = Barrier::new(n);
    let delivered = AtomicU64::new(0);
    let halt = AtomicBool::new(false);

    let mut results: Vec<Option<(W, ShardLog)>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n);
        for (me, mut w) in workers.into_iter().enumerate() {
            let mailboxes = &mailboxes;
            let barrier = &barrier;
            let delivered = &delivered;
            let halt = &halt;
            handles.push(scope.spawn(move || {
                if dcer_obs::enabled() {
                    dcer_obs::name_current_track(&format!("worker-{me}"));
                }
                let mut log = ShardLog::default();
                let mut inbox: Vec<W::Msg> = Vec::new();
                let mut first = true;
                let mut step = 0u64;
                loop {
                    let span = dcer_obs::span(step_span_name(first)).with_arg("step", step);
                    let t0 = Instant::now();
                    let out =
                        if first { w.initial() } else { w.superstep(std::mem::take(&mut inbox)) };
                    first = false;
                    log.compute_secs.push(t0.elapsed().as_secs_f64());
                    drop(span);
                    // The exchange span covers deposit, barrier wait (time
                    // spent blocked on stragglers), and inbox drain.
                    let exchange = dcer_obs::span("exchange").with_arg("step", step);
                    for (to, msg) in out {
                        if to == me {
                            continue; // self-routes are free and filtered
                        }
                        assert!(to < n, "routed to nonexistent shard {to}");
                        log.sent_batches += 1;
                        log.sent_units += msg.unit_count() as u64;
                        dcer_obs::histogram_record("bsp.batch_bytes", msg.size_bytes() as u64);
                        delivered.fetch_add(1, Ordering::Relaxed);
                        mailboxes[to].lock().expect("mailbox poisoned").push(msg);
                    }
                    barrier.wait(); // all deposits visible

                    inbox = std::mem::take(&mut *mailboxes[me].lock().expect("mailbox poisoned"));
                    let step_recv: u64 = inbox.iter().map(|m| m.size_bytes() as u64).sum();
                    log.recv_bytes_per_step.push(step_recv);
                    log.recv_bytes += step_recv;
                    dcer_obs::histogram_record("bsp.worker_recv_bytes", step_recv);
                    if barrier.wait().is_leader() {
                        // Coordinator duty: quiescence detection, nothing else.
                        halt.store(delivered.swap(0, Ordering::Relaxed) == 0, Ordering::Relaxed);
                    }
                    barrier.wait(); // halt decision visible
                    drop(exchange);
                    step += 1;
                    if halt.load(Ordering::Relaxed) {
                        break;
                    }
                }
                log.absorbed = w.absorbed_duplicates();
                (w, log)
            }));
        }
        for (i, h) in handles.into_iter().enumerate() {
            results[i] = Some(h.join().expect("worker thread panicked"));
        }
    });

    let (mut final_workers, mut logs) = (Vec::with_capacity(n), Vec::with_capacity(n));
    for r in results {
        let (w, log) = r.expect("worker result");
        final_workers.push(w);
        logs.push(log);
    }

    let supersteps = logs.iter().map(|l| l.compute_secs.len()).max().unwrap_or(0);
    let mut stats = BspStats::new(n);
    for step in 0..supersteps {
        let durations: Vec<f64> =
            logs.iter().map(|l| l.compute_secs.get(step).copied().unwrap_or(0.0)).collect();
        let step_bytes: u64 =
            logs.iter().map(|l| l.recv_bytes_per_step.get(step).copied().unwrap_or(0)).sum();
        stats.account_step(cost, &durations, step_bytes);
    }
    for (i, log) in logs.iter().enumerate() {
        stats.batches += log.sent_batches;
        stats.messages += log.sent_units;
        stats.bytes += log.recv_bytes;
        stats.shard_bytes[i] = log.recv_bytes;
        stats.deduped_facts += log.absorbed;
    }
    stats.wall_secs = wall.elapsed().as_secs_f64();
    (final_workers, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy computation: a "fact" spreads max values; workers emit to every
    /// peer when their local max increases. Converges to the global max
    /// everywhere.
    struct MaxWorker {
        id: WorkerId,
        peers: usize,
        local_max: u64,
    }

    impl MaxWorker {
        fn broadcast(&self) -> Vec<(WorkerId, u64)> {
            (0..self.peers).filter(|&w| w != self.id).map(|w| (w, self.local_max)).collect()
        }
    }

    impl Worker for MaxWorker {
        type Msg = u64;
        fn initial(&mut self) -> Vec<(WorkerId, u64)> {
            self.broadcast()
        }
        fn superstep(&mut self, inbox: Vec<u64>) -> Vec<(WorkerId, u64)> {
            let incoming = inbox.into_iter().max().unwrap_or(0);
            if incoming > self.local_max {
                self.local_max = incoming;
                self.broadcast()
            } else {
                Vec::new()
            }
        }
    }

    fn fleet(maxes: &[u64]) -> Vec<MaxWorker> {
        let n = maxes.len();
        maxes.iter().enumerate().map(|(id, &m)| MaxWorker { id, peers: n, local_max: m }).collect()
    }

    fn run(mode: ExecutionMode) -> (Vec<MaxWorker>, BspStats) {
        run_bsp(fleet(&[3, 17, 5, 11]), mode, &CostModel::default())
    }

    #[test]
    fn simulated_converges_to_global_max() {
        let (workers, stats) = run(ExecutionMode::Simulated);
        assert!(workers.iter().all(|w| w.local_max == 17));
        assert!(stats.supersteps >= 2);
        assert!(stats.batches > 0);
        assert_eq!(stats.bytes, stats.batches * 8);
        assert_eq!(stats.messages, stats.batches, "scalar messages carry one unit");
        assert_eq!(stats.step_max_secs.len(), stats.supersteps);
        assert_eq!(stats.shard_bytes.iter().sum::<u64>(), stats.bytes);
        assert!(stats.makespan_secs > 0.0);
    }

    #[test]
    fn threaded_converges_to_global_max() {
        let (workers, stats) = run(ExecutionMode::Threaded);
        assert!(workers.iter().all(|w| w.local_max == 17));
        assert!(stats.supersteps >= 2);
        assert_eq!(stats.worker_busy_secs.len(), 4);
        assert_eq!(stats.shard_bytes.iter().sum::<u64>(), stats.bytes);
    }

    #[test]
    fn modes_agree_on_results_and_traffic() {
        let (_, sim) = run(ExecutionMode::Simulated);
        let (_, thr) = run(ExecutionMode::Threaded);
        assert_eq!(sim.batches, thr.batches);
        assert_eq!(sim.messages, thr.messages);
        assert_eq!(sim.bytes, thr.bytes);
        assert_eq!(sim.supersteps, thr.supersteps);
    }

    #[test]
    fn quiescent_from_start_terminates_after_one_step() {
        struct Quiet;
        impl Worker for Quiet {
            type Msg = u64;
            fn initial(&mut self) -> Vec<(WorkerId, u64)> {
                Vec::new()
            }
            fn superstep(&mut self, _: Vec<u64>) -> Vec<(WorkerId, u64)> {
                unreachable!("never reached without messages")
            }
        }
        for mode in [ExecutionMode::Simulated, ExecutionMode::Threaded] {
            let (_, stats) = run_bsp(vec![Quiet, Quiet], mode, &CostModel::default());
            assert_eq!(stats.supersteps, 1, "{mode:?}");
            assert_eq!(stats.batches, 0, "{mode:?}");
        }
    }

    #[test]
    fn self_routes_are_filtered() {
        struct Selfish {
            id: WorkerId,
        }
        impl Worker for Selfish {
            type Msg = u64;
            fn initial(&mut self) -> Vec<(WorkerId, u64)> {
                vec![(self.id, 7)]
            }
            fn superstep(&mut self, inbox: Vec<u64>) -> Vec<(WorkerId, u64)> {
                assert!(inbox.is_empty(), "self-routed messages must not arrive");
                Vec::new()
            }
        }
        for mode in [ExecutionMode::Simulated, ExecutionMode::Threaded] {
            let (_, stats) =
                run_bsp(vec![Selfish { id: 0 }, Selfish { id: 1 }], mode, &CostModel::default());
            assert_eq!(stats.batches, 0, "{mode:?}: self-deliveries never count");
            assert_eq!(stats.supersteps, 1, "{mode:?}");
        }
    }

    #[test]
    fn communication_cost_enters_makespan() {
        let free = CostModel { secs_per_byte: 0.0, barrier_secs: 0.0 };
        let costly = CostModel { secs_per_byte: 1e-3, barrier_secs: 0.0 };
        let (_, a) = run_bsp(fleet(&[3, 17]), ExecutionMode::Simulated, &free);
        let (_, b) = run_bsp(fleet(&[3, 17]), ExecutionMode::Simulated, &costly);
        assert!(b.makespan_secs > a.makespan_secs);
    }

    #[test]
    fn stats_serialize_to_json() {
        let (_, stats) = run(ExecutionMode::Simulated);
        let j = serde_json::to_value(&stats);
        assert_eq!(j["supersteps"], stats.supersteps);
        assert!(!j["shard_bytes"].is_null());
    }
}
