//! A Bulk Synchronous Parallel (BSP \[63\]) runtime for the fixpoint model of
//! Section III-B: `n` workers proceeding in supersteps until global
//! quiescence (`ΔΓᵢ = ∅` for all `i`).
//!
//! ## Sharded exchange
//!
//! Unlike the classical formulation where a master `P₀` receives, unions and
//! re-routes every fact, workers here route *directly by destination shard*:
//! [`Worker::superstep`] returns `(recipient, message)` pairs and the runtime
//! deposits each message straight into the recipient's mailbox. The
//! coordinator role is reduced to what `P₀` fundamentally must do — detect
//! global quiescence (a superstep that delivered nothing) — so no single
//! process is a serialization point for message payloads.
//!
//! Messages implement [`Message`] and are expected to be *cheaply shareable*:
//! routing one batch to `k` recipients costs `k` clones of the message
//! handle (an `Arc` bump for `DeltaBatch`-style types), never a deep copy of
//! the payload.
//!
//! ## Execution modes (see `DESIGN.md` §5)
//!
//! - [`ExecutionMode::Threaded`]: every worker is a real OS thread; mailboxes
//!   are shared-memory queues synchronized by per-superstep barriers —
//!   validates the algorithms under true concurrency.
//! - [`ExecutionMode::Simulated`]: workers run sequentially while the
//!   runtime records each worker's busy time per superstep; the *simulated
//!   parallel time* (makespan) is `Σ_steps max_worker(busy)` plus a
//!   configurable per-byte communication cost. This measures exactly the
//!   quantities parallel scalability (Theorem 7) is about, independent of
//!   how many physical cores the host has.
//!
//! ## Fault tolerance (see `DESIGN.md` §11)
//!
//! [`run_bsp_with`] accepts a [`FaultConfig`]: superstep-boundary
//! checkpointing into a [`CheckpointStore`], a deterministic [`FaultPlan`]
//! injector (crash / drop / delay / duplicate / stall), and a recovery path
//! that restores a failed worker from its last checkpoint and replays the
//! exchanges it missed from a per-recipient delivery log. Replay is
//! idempotent for `DeltaBatch`-style canonical messages, so the recovered
//! fixpoint equals the fault-free one (Church–Rosser). Both executors make
//! every fault decision from the same `(worker, step)` / `(from, to, step)`
//! keys, so [`RecoveryStats`] are identical across modes for a given plan.
//! An inactive config (the default used by [`run_bsp`]) takes the legacy
//! zero-overhead path.

pub mod checkpoint;
pub mod fault;

pub use checkpoint::CheckpointStore;
pub use fault::{EdgeFault, Fault, FaultConfig, FaultPlan, RecoveryStats};

use serde::Serialize;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};
use std::time::Instant;

/// Worker index within a run.
pub type WorkerId = usize;

/// A routable message: cheap to clone (hand an `Arc`-backed batch to `k`
/// recipients with `k` pointer bumps) and sized exactly for communication
/// accounting.
pub trait Message: Send + Clone + 'static {
    /// Exact wire size of the payload in bytes.
    fn size_bytes(&self) -> usize;

    /// Number of logical units (facts) carried; `1` for scalar messages.
    fn unit_count(&self) -> usize {
        1
    }

    /// Serialize the payload for on-disk checkpoint spill. `None` (the
    /// default) keeps checkpoints of this message type memory-only.
    fn encode(&self) -> Option<Vec<u8>> {
        None
    }

    /// Inverse of [`Message::encode`]; `None` on unsupported or malformed
    /// input.
    fn decode(_bytes: &[u8]) -> Option<Self> {
        None
    }
}

macro_rules! scalar_message {
    ($($t:ty),*) => {$(
        impl Message for $t {
            fn size_bytes(&self) -> usize {
                std::mem::size_of::<$t>()
            }
            fn encode(&self) -> Option<Vec<u8>> {
                Some(self.to_le_bytes().to_vec())
            }
            fn decode(bytes: &[u8]) -> Option<$t> {
                Some(<$t>::from_le_bytes(bytes.try_into().ok()?))
            }
        }
    )*};
}

scalar_message!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A BSP worker. `initial` is the partial-evaluation superstep (`A` in the
/// paper); `superstep` is the incremental step (`A_Δ`). Both return messages
/// *already routed* to their destination shards; deliveries to `self` are
/// filtered by the runtime.
pub trait Worker: Send {
    /// The message type exchanged between shards.
    type Msg: Message;

    /// Superstep 0: compute local results from the worker's fragment and
    /// route them.
    fn initial(&mut self) -> Vec<(WorkerId, Self::Msg)>;

    /// Superstep r ≥ 1: incorporate delivered messages, route new local
    /// results. Returning nothing signals local quiescence.
    fn superstep(&mut self, inbox: Vec<Self::Msg>) -> Vec<(WorkerId, Self::Msg)>;

    /// Units received over the whole run that the worker already knew
    /// (duplicates absorbed by local dedup). Read once at the end of the
    /// run for [`BspStats::deduped_facts`].
    fn absorbed_duplicates(&self) -> u64 {
        0
    }

    /// Capture the worker's durable state as one message for superstep
    /// checkpointing. `None` (the default) opts this worker out of
    /// checkpointing; recovery then rebuilds from immutable inputs alone.
    fn snapshot(&mut self) -> Option<Self::Msg> {
        None
    }

    /// Rebuild after a failure: discard in-memory state, reload from
    /// `checkpoint` (the latest [`Worker::snapshot`], if any) and return
    /// messages to route — the re-announcement of recovered state, which is
    /// essential when the failure precedes `initial`. Workers that a
    /// [`FaultPlan`] may crash must override this; the default keeps stale
    /// state and announces nothing.
    fn restore(&mut self, _checkpoint: Option<&Self::Msg>) -> Vec<(WorkerId, Self::Msg)> {
        Vec::new()
    }
}

/// How to execute the workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionMode {
    /// Sequential execution with per-worker time accounting (simulated
    /// cluster).
    Simulated,
    /// One OS thread per worker.
    Threaded,
}

/// Cost model for the simulated cluster.
///
/// ```
/// let cost = dcer_bsp::CostModel::default();
/// // 8e-8 s/B = 12.5 MB/s = 1e8 bit/s = 100 Mbit/s.
/// assert!((cost.secs_per_byte - 8e-8).abs() < 1e-20);
/// assert!((1.0 / cost.secs_per_byte * 8.0 - 100e6).abs() < 1e-3);
/// assert!((cost.barrier_secs - 1e-4).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Serialize)]
pub struct CostModel {
    /// Seconds per byte routed between workers. The default `8e-8` s/B is
    /// 12.5 MB/s ≈ 100 Mbit/s — the network of the paper's evaluation
    /// cluster. Zero ignores communication.
    pub secs_per_byte: f64,
    /// Fixed per-superstep synchronization barrier cost in seconds.
    pub barrier_secs: f64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel { secs_per_byte: 8e-8, barrier_secs: 1e-4 }
    }
}

/// Statistics of one BSP run.
#[derive(Debug, Clone, Default, Serialize)]
pub struct BspStats {
    /// Number of supersteps executed (including superstep 0).
    pub supersteps: usize,
    /// Batches (messages) delivered worker→worker.
    pub batches: u64,
    /// Logical units (facts) delivered: Σ `unit_count` over deliveries.
    pub messages: u64,
    /// Total bytes delivered (per [`Message::size_bytes`]).
    pub bytes: u64,
    /// Bytes received per destination shard.
    pub shard_bytes: Vec<u64>,
    /// Units delivered that recipients already knew (absorbed duplicates).
    pub deduped_facts: u64,
    /// Per superstep: the maximum single-worker busy time (seconds).
    pub step_max_secs: Vec<f64>,
    /// Per superstep: the sum of worker busy times (seconds).
    pub step_total_secs: Vec<f64>,
    /// Per worker: total busy seconds across supersteps.
    pub worker_busy_secs: Vec<f64>,
    /// Simulated parallel time: Σ max-per-step + communication + barriers.
    pub makespan_secs: f64,
    /// Total compute across all workers (the sequential-equivalent work).
    pub total_compute_secs: f64,
    /// Wall-clock time of the whole run.
    pub wall_secs: f64,
    /// Fault-tolerance layer counters (all zero on fault-free runs).
    pub recovery: RecoveryStats,
}

impl BspStats {
    fn new(n: usize) -> BspStats {
        BspStats { worker_busy_secs: vec![0.0; n], shard_bytes: vec![0; n], ..Default::default() }
    }

    /// Publish this run's aggregates into the global [`dcer_obs`] registry
    /// (no-op unless a recorder is installed). Scalars become `bsp.*`
    /// counters/gauges; per-shard series carry the shard index as label.
    pub fn publish(&self) {
        if !dcer_obs::enabled() {
            return;
        }
        dcer_obs::counter_add("bsp.supersteps", self.supersteps as u64);
        dcer_obs::counter_add("bsp.batches", self.batches);
        dcer_obs::counter_add("bsp.messages", self.messages);
        dcer_obs::counter_add("bsp.bytes", self.bytes);
        dcer_obs::counter_add("bsp.deduped_facts", self.deduped_facts);
        dcer_obs::gauge_set("bsp.makespan_secs", self.makespan_secs);
        dcer_obs::gauge_set("bsp.total_compute_secs", self.total_compute_secs);
        dcer_obs::gauge_set("bsp.wall_secs", self.wall_secs);
        for (i, &b) in self.shard_bytes.iter().enumerate() {
            dcer_obs::counter_add_labeled("bsp.shard_bytes", i as u32, b);
        }
        for (i, &s) in self.worker_busy_secs.iter().enumerate() {
            dcer_obs::gauge_set_labeled("bsp.worker_busy_secs", i as u32, s);
        }
        for &m in &self.step_max_secs {
            dcer_obs::histogram_record("bsp.step_max_us", (m * 1e6) as u64);
        }
        self.recovery.publish();
    }

    fn account_step(&mut self, cost: &CostModel, durations: &[f64], step_bytes: u64) {
        let max = durations.iter().copied().fold(0.0, f64::max);
        let total: f64 = durations.iter().sum();
        self.step_max_secs.push(max);
        self.step_total_secs.push(total);
        for (w, d) in durations.iter().enumerate() {
            self.worker_busy_secs[w] += d;
        }
        self.supersteps += 1;
        self.makespan_secs += max + cost.barrier_secs + step_bytes as f64 * cost.secs_per_byte;
        self.total_compute_secs += total;
    }
}

/// A BSP run that could not complete under its [`FaultConfig`]: a dropped
/// delivery exhausted its retransmission budget. Carries the statistics of
/// the aborted attempt so callers can degrade gracefully (rerun fault-free)
/// while still reporting what the fault layer did.
#[derive(Debug)]
pub struct BspAbort {
    /// Human-readable cause.
    pub reason: String,
    /// Statistics of the aborted attempt (recovery counters included).
    /// Boxed: keeps the `Result` err variant small on the hot return path.
    pub stats: Box<BspStats>,
}

impl std::fmt::Display for BspAbort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BSP run aborted: {}", self.reason)
    }
}

impl std::error::Error for BspAbort {}

/// Run a BSP computation to global quiescence. Returns the workers (with
/// their final state) and the run statistics.
pub fn run_bsp<W: Worker>(
    workers: Vec<W>,
    mode: ExecutionMode,
    cost: &CostModel,
) -> (Vec<W>, BspStats) {
    match run_bsp_with(workers, mode, cost, &FaultConfig::none()) {
        Ok(result) => result,
        Err(_) => unreachable!("an inactive FaultConfig never aborts"),
    }
}

/// Run a BSP computation to global quiescence under a fault-tolerance
/// configuration. With an inactive config this is exactly [`run_bsp`]
/// (zero overhead); with checkpointing and/or a [`FaultPlan`] the runtime
/// checkpoints at superstep boundaries, injects the planned faults and
/// recovers failed workers. Returns [`BspAbort`] when a dropped delivery
/// exhausts its retransmission budget.
pub fn run_bsp_with<W: Worker>(
    workers: Vec<W>,
    mode: ExecutionMode,
    cost: &CostModel,
    faults: &FaultConfig,
) -> Result<(Vec<W>, BspStats), BspAbort> {
    run_bsp_inner(workers, mode, cost, faults, None)
}

/// Like [`run_bsp_with`], but the threaded executor runs its workers as
/// *resident* tasks on the shared [`dcer_pool::WorkPool`] instead of
/// spawning fresh scoped threads — one worker per pool lane (the caller
/// included), with temporary overflow threads beyond the pool size. The
/// simulated executor is inherently sequential and ignores the pool.
/// Superstep semantics, stats and emitted flow edges are identical to the
/// scoped-thread path; each worker redirects its spans onto a dedicated
/// `worker-{k}` track so profiles look the same across dispatch modes.
pub fn run_bsp_on<W: Worker>(
    pool: &dcer_pool::WorkPool,
    workers: Vec<W>,
    mode: ExecutionMode,
    cost: &CostModel,
    faults: &FaultConfig,
) -> Result<(Vec<W>, BspStats), BspAbort> {
    run_bsp_inner(workers, mode, cost, faults, Some(pool))
}

fn run_bsp_inner<W: Worker>(
    workers: Vec<W>,
    mode: ExecutionMode,
    cost: &CostModel,
    faults: &FaultConfig,
    pool: Option<&dcer_pool::WorkPool>,
) -> Result<(Vec<W>, BspStats), BspAbort> {
    if workers.is_empty() {
        // Without this, the simulated loop would still account one empty
        // superstep while the threaded path spawns nothing — the one stats
        // divergence between the executors.
        return Ok((workers, BspStats::new(0)));
    }
    let ft = if faults.active() { Some(faults) } else { None };
    let result = match mode {
        ExecutionMode::Simulated => run_simulated(workers, cost, ft),
        ExecutionMode::Threaded => run_threaded(workers, cost, ft, pool),
    };
    if let Ok((_, stats)) = &result {
        stats.publish();
    }
    result
}

/// The phase-span name for a superstep: superstep 0 runs the partial
/// evaluation `A` ("deduce"), later supersteps run `A_Δ` ("incdeduce").
fn step_span_name(first: bool) -> &'static str {
    if first {
        "deduce"
    } else {
        "incdeduce"
    }
}

/// Deterministic id for the `bsp.send` flow edge of one batch handoff:
/// derived from the routing coordinates `(exchange step, from, to)` so the
/// threaded and simulated executors emit the *identical* edge set for the
/// same run (pinned by `flow_parity` in `tests/flow_parity.rs`). Stays far
/// below 2^53, so the id survives JSON number round-trips.
fn bsp_flow_id(step: u64, from: WorkerId, to: WorkerId) -> u64 {
    (step << 32) | ((from as u64) << 16) | to as u64
}

/// Deterministic id for the `bsp.spawn` flow edge linking the calling
/// thread (which just partitioned and built the fleet) to each worker's
/// first superstep. Namespaced above every possible [`bsp_flow_id`].
fn spawn_flow_id(worker: WorkerId) -> u64 {
    (1u64 << 50) | worker as u64
}

/// A message held back by the injector: either a scheduled retransmission
/// of a dropped delivery (`retry`) or a delayed delivery already past the
/// injector. Due at the exchange of superstep `due`.
struct PendingSend<M> {
    from: WorkerId,
    to: WorkerId,
    msg: M,
    attempts: u32,
    due: u64,
    retry: bool,
}

/// Injector verdict for one deposit attempt.
enum SendOutcome {
    Deliver,
    DeliverTwice,
    /// Deliver at the exchange of this later superstep.
    Delayed(u64),
    /// Retransmit (attempt count, due superstep).
    Retry(u32, u64),
    /// Retransmission budget exhausted — abort the run.
    Exhausted,
}

/// Consult the plan for a deposit on `from -> to` at `step` (`attempts`
/// prior drops of this message) and update the fault counters. Pure in the
/// `(plan, edge, step, attempts)` key, so both executors agree.
fn classify_send(
    cfg: &FaultConfig,
    from: WorkerId,
    to: WorkerId,
    step: u64,
    attempts: u32,
    rec: &mut RecoveryStats,
) -> SendOutcome {
    match cfg.plan.edge(from, to, step) {
        EdgeFault::Deliver => SendOutcome::Deliver,
        EdgeFault::Duplicate => {
            rec.duplicated_batches += 1;
            dcer_obs::instant("bsp.fault.dup");
            SendOutcome::DeliverTwice
        }
        EdgeFault::Delay(d) => {
            rec.delayed_batches += 1;
            dcer_obs::instant("bsp.fault.delay");
            SendOutcome::Delayed(step + d)
        }
        EdgeFault::Drop => {
            rec.dropped_batches += 1;
            dcer_obs::instant("bsp.fault.drop");
            if attempts >= cfg.max_retries {
                SendOutcome::Exhausted
            } else {
                // Exponential backoff: the r-th retry waits base << r steps.
                SendOutcome::Retry(attempts + 1, step + (cfg.retry_backoff_steps << attempts))
            }
        }
    }
}

fn exhausted_reason(from: WorkerId, to: WorkerId, attempts: u32, step: u64) -> String {
    format!("delivery {from}->{to} dropped {} times by superstep {step}; retries exhausted", {
        attempts + 1
    })
}

/// Per-run fault-tolerance state of the simulated executor.
struct SimFt<'a, M: Message> {
    cfg: &'a FaultConfig,
    store: CheckpointStore<M>,
    /// Per-recipient delivery log: `(deposit superstep, message)`, appended
    /// in step order, trimmed at each checkpoint. Only maintained when the
    /// plan can actually fail a worker (`replayable`) — crashes come from
    /// the plan alone, so an empty plan never replays.
    logs: Vec<Vec<(u64, M)>>,
    replayable: bool,
    pending: Vec<PendingSend<M>>,
    rec: RecoveryStats,
}

fn run_simulated<W: Worker>(
    mut workers: Vec<W>,
    cost: &CostModel,
    faults: Option<&FaultConfig>,
) -> Result<(Vec<W>, BspStats), BspAbort> {
    let n = workers.len();
    let wall = Instant::now();
    let mut stats = BspStats::new(n);
    let mut ft: Option<SimFt<W::Msg>> = faults.map(|cfg| {
        let replayable = !cfg.plan.is_empty();
        SimFt {
            cfg,
            store: CheckpointStore::new(n, cfg.checkpoint_dir.clone()),
            logs: if replayable { (0..n).map(|_| Vec::new()).collect() } else { Vec::new() },
            replayable,
            pending: Vec::new(),
            rec: RecoveryStats::default(),
        }
    });
    // Virtual trace tracks: the simulated cluster runs on one OS thread,
    // but each worker still gets its own timeline in the exported trace.
    let tracks: Vec<dcer_obs::TrackId> = if dcer_obs::enabled() {
        (0..n).map(|i| dcer_obs::alloc_track(&format!("worker-{i}"))).collect()
    } else {
        vec![dcer_obs::TrackId::UNTRACKED; n]
    };
    if dcer_obs::enabled() {
        // Same causal edges the threaded executor emits at thread spawn:
        // they link the partition/build work on the calling thread to each
        // worker's first superstep.
        for (i, &track) in tracks.iter().enumerate() {
            dcer_obs::flow_begin("bsp.spawn", spawn_flow_id(i));
            dcer_obs::flow_end_on("bsp.spawn", spawn_flow_id(i), track);
        }
    }
    let mut inboxes: Vec<Vec<W::Msg>> = (0..n).map(|_| Vec::new()).collect();
    let mut first = true;
    let mut step = 0u64;
    loop {
        let mut durations = vec![0.0f64; n];
        let mut routed: Vec<(WorkerId, WorkerId, W::Msg)> = Vec::new();
        for (i, w) in workers.iter_mut().enumerate() {
            let inbox = std::mem::take(&mut inboxes[i]);
            let span = dcer_obs::span_on(step_span_name(first), tracks[i]).with_arg("step", step);
            let t0 = Instant::now();
            let mut stall_secs = 0.0f64;
            let out = if let Some(run) = ft.as_mut() {
                let stall = run.cfg.plan.stall_millis(i, step);
                let crashed = run.cfg.plan.crashed(i, step);
                let failed =
                    crashed || stall.is_some_and(|ms| ms as f64 / 1e3 > run.cfg.stall_timeout_secs);
                if crashed {
                    run.rec.crashes += 1;
                    dcer_obs::instant("bsp.fault.crash");
                }
                if stall.is_some() {
                    run.rec.stalls += 1;
                    dcer_obs::instant("bsp.fault.stall");
                }
                if failed {
                    // The worker's volatile state (and undrained inbox) is
                    // lost; the log still holds everything since the last
                    // checkpoint, including what was in the inbox.
                    drop(inbox);
                    let ckpt = run.store.latest(i);
                    let mut out = w.restore(ckpt.as_ref().map(|(_, m)| m));
                    let replay: Vec<W::Msg> = run.logs[i]
                        .iter()
                        .filter(|(s, _)| *s < step)
                        .map(|(_, m)| m.clone())
                        .collect();
                    run.rec.replayed_batches += replay.len() as u64;
                    run.rec.replayed_facts +=
                        replay.iter().map(|m| m.unit_count() as u64).sum::<u64>();
                    run.rec.recoveries += 1;
                    dcer_obs::instant("bsp.recovery.restore");
                    out.extend(w.superstep(replay));
                    out
                } else {
                    let out = if first { w.initial() } else { w.superstep(inbox) };
                    if let Some(ms) = stall {
                        // Sub-timeout stall: virtual slowdown, no failure.
                        stall_secs = ms as f64 / 1e3;
                    }
                    out
                }
            } else if first {
                w.initial()
            } else {
                w.superstep(inbox)
            };
            // Checkpoint inside the timed window: its cost is part of the
            // worker's step in the virtual makespan.
            if let Some(run) = ft.as_mut() {
                if run.cfg.checkpoint_interval > 0
                    && step.is_multiple_of(run.cfg.checkpoint_interval)
                {
                    let c0 = dcer_obs::enabled().then(Instant::now);
                    if let Some(snap) = w.snapshot() {
                        run.rec.checkpoints += 1;
                        run.rec.checkpoint_facts += snap.unit_count() as u64;
                        run.rec.checkpoint_bytes += snap.size_bytes() as u64;
                        run.store.put(i, step, snap);
                        // Replay after a later failure starts from this
                        // checkpoint: older log entries are covered by it.
                        if run.replayable {
                            run.logs[i].retain(|(s, _)| *s >= step);
                        }
                    }
                    if let Some(c0) = c0 {
                        dcer_obs::histogram_record(
                            "bsp.checkpoint_ns",
                            c0.elapsed().as_nanos() as u64,
                        );
                    }
                }
            }
            durations[i] = t0.elapsed().as_secs_f64() + stall_secs;
            drop(span);
            routed.extend(out.into_iter().map(|(to, m)| (i, to, m)));
        }
        first = false;
        let exchange = dcer_obs::span("exchange").with_arg("step", step);
        if dcer_obs::enabled() {
            // Synthesized per-worker barrier waits: no thread actually
            // blocks here, but under the simulated cost model every worker
            // except the straggler would have waited (step max busy − own
            // busy) at the barrier. Recording that gap as an explicit
            // `bsp.barrier_wait` span makes the virtual straggler cost
            // visible to the same critical-path analysis the threaded
            // executor feeds with real blocking time.
            let max_busy = durations.iter().cloned().fold(0.0f64, f64::max);
            let base = dcer_obs::now_ns();
            for (i, &busy) in durations.iter().enumerate() {
                let wait_ns = ((max_busy - busy) * 1e9) as u64;
                if wait_ns > 0 {
                    dcer_obs::record_span(
                        "bsp.barrier_wait",
                        tracks[i],
                        base,
                        wait_ns,
                        Some(("step", step)),
                    );
                }
            }
        }
        let mut deliveries: Vec<(WorkerId, WorkerId, W::Msg)> = Vec::new();
        if let Some(run) = ft.as_mut() {
            let mut due = Vec::new();
            let mut later = Vec::new();
            for p in run.pending.drain(..) {
                if p.due <= step {
                    due.push(p);
                } else {
                    later.push(p);
                }
            }
            run.pending = later;
            for p in due {
                if !p.retry {
                    // A delayed delivery already passed the injector.
                    deliveries.push((p.from, p.to, p.msg));
                    continue;
                }
                run.rec.retries += 1;
                match classify_send(run.cfg, p.from, p.to, step, p.attempts, &mut run.rec) {
                    SendOutcome::Deliver => deliveries.push((p.from, p.to, p.msg)),
                    SendOutcome::DeliverTwice => {
                        deliveries.push((p.from, p.to, p.msg.clone()));
                        deliveries.push((p.from, p.to, p.msg));
                    }
                    SendOutcome::Delayed(due) => run.pending.push(PendingSend {
                        from: p.from,
                        to: p.to,
                        msg: p.msg,
                        attempts: p.attempts,
                        due,
                        retry: false,
                    }),
                    SendOutcome::Retry(attempts, due) => run.pending.push(PendingSend {
                        from: p.from,
                        to: p.to,
                        msg: p.msg,
                        attempts,
                        due,
                        retry: true,
                    }),
                    SendOutcome::Exhausted => {
                        stats.recovery = run.rec;
                        stats.wall_secs = wall.elapsed().as_secs_f64();
                        return Err(BspAbort {
                            reason: exhausted_reason(p.from, p.to, p.attempts, step),
                            stats: Box::new(stats),
                        });
                    }
                }
            }
            for (from, to, msg) in routed {
                if to == from {
                    continue; // self-routes are free and filtered
                }
                assert!(to < n, "routed to nonexistent shard {to}");
                match classify_send(run.cfg, from, to, step, 0, &mut run.rec) {
                    SendOutcome::Deliver => deliveries.push((from, to, msg)),
                    SendOutcome::DeliverTwice => {
                        deliveries.push((from, to, msg.clone()));
                        deliveries.push((from, to, msg));
                    }
                    SendOutcome::Delayed(due) => run.pending.push(PendingSend {
                        from,
                        to,
                        msg,
                        attempts: 0,
                        due,
                        retry: false,
                    }),
                    SendOutcome::Retry(attempts, due) => {
                        run.pending.push(PendingSend { from, to, msg, attempts, due, retry: true })
                    }
                    SendOutcome::Exhausted => {
                        stats.recovery = run.rec;
                        stats.wall_secs = wall.elapsed().as_secs_f64();
                        return Err(BspAbort {
                            reason: exhausted_reason(from, to, 0, step),
                            stats: Box::new(stats),
                        });
                    }
                }
            }
        } else {
            for (from, to, msg) in routed {
                if to == from {
                    continue; // self-routes are free and filtered
                }
                assert!(to < n, "routed to nonexistent shard {to}");
                deliveries.push((from, to, msg));
            }
        }
        let mut step_bytes = 0u64;
        let mut delivered_now = 0u64;
        for (from, to, msg) in deliveries {
            let b = msg.size_bytes() as u64;
            step_bytes += b;
            stats.bytes += b;
            stats.shard_bytes[to] += b;
            stats.batches += 1;
            stats.messages += msg.unit_count() as u64;
            dcer_obs::histogram_record("bsp.batch_bytes", b);
            // One causal edge per delivered batch, sender timeline to
            // recipient timeline, same id the threaded executor derives.
            dcer_obs::flow_begin_on("bsp.send", bsp_flow_id(step, from, to), tracks[from]);
            dcer_obs::flow_end_on("bsp.send", bsp_flow_id(step, from, to), tracks[to]);
            if let Some(run) = ft.as_mut() {
                if run.replayable {
                    run.logs[to].push((step, msg.clone()));
                }
            }
            inboxes[to].push(msg);
            delivered_now += 1;
        }
        dcer_obs::histogram_record("bsp.step_bytes", step_bytes);
        drop(exchange);
        stats.account_step(cost, &durations, step_bytes);
        step += 1;
        // Quiescence must also wait out in-flight messages (scheduled
        // retransmissions and delayed deliveries), otherwise a delayed
        // batch would silently vanish and the fixpoint would be wrong.
        let in_flight = ft.as_ref().map_or(0, |run| run.pending.len());
        if delivered_now == 0 && in_flight == 0 {
            break;
        }
    }
    stats.deduped_facts = workers.iter().map(|w| w.absorbed_duplicates()).sum();
    if let Some(run) = ft {
        stats.recovery = run.rec;
    }
    stats.wall_secs = wall.elapsed().as_secs_f64();
    Ok((workers, stats))
}

/// Per-thread measurements, merged into [`BspStats`] after the join.
#[derive(Default)]
struct ShardLog {
    compute_secs: Vec<f64>,
    recv_bytes_per_step: Vec<u64>,
    recv_bytes: u64,
    sent_batches: u64,
    sent_units: u64,
    absorbed: u64,
    recovery: RecoveryStats,
}

/// Fault-tolerance state shared by all worker threads.
struct ThreadedFt<'a, M: Message> {
    cfg: &'a FaultConfig,
    store: CheckpointStore<M>,
    /// Per-recipient delivery log (same contract as the simulated one);
    /// each recipient trims its own log at its checkpoints. Maintained
    /// only when the plan can fail a worker (`replayable`).
    logs: Vec<Mutex<Vec<(u64, M)>>>,
    replayable: bool,
    /// Global count of in-flight messages (retries + delayed) — the
    /// quiescence leader must not halt while this is nonzero.
    in_flight: AtomicU64,
    aborted: AtomicBool,
    abort_reason: Mutex<Option<String>>,
}

impl<M: Message> ThreadedFt<'_, M> {
    fn flag_abort(&self, reason: String) {
        let mut slot = self.abort_reason.lock().expect("abort slot poisoned");
        if slot.is_none() {
            *slot = Some(reason);
        }
        self.aborted.store(true, Ordering::Relaxed);
    }
}

/// One worker's inbound slot in the threaded executor: batches tagged with
/// their sender so the drain can close each `bsp.send` flow edge.
type Mailbox<M> = Mutex<Vec<(WorkerId, M)>>;

/// Deposit one message from `from` into `to`'s mailbox with full
/// accounting; appends to the recipient's delivery log when fault tolerance
/// is active. Opens the `bsp.send` causal flow edge — the recipient closes
/// it when it drains the batch after the barrier.
#[allow(clippy::too_many_arguments)]
fn deposit<M: Message>(
    from: WorkerId,
    to: WorkerId,
    msg: M,
    step: u64,
    log: &mut ShardLog,
    mailboxes: &[Mailbox<M>],
    ft: Option<&ThreadedFt<'_, M>>,
    delivered: &AtomicU64,
) {
    log.sent_batches += 1;
    log.sent_units += msg.unit_count() as u64;
    dcer_obs::histogram_record("bsp.batch_bytes", msg.size_bytes() as u64);
    dcer_obs::flow_begin("bsp.send", bsp_flow_id(step, from, to));
    delivered.fetch_add(1, Ordering::Relaxed);
    if let Some(ft) = ft {
        if ft.replayable {
            ft.logs[to].lock().expect("delivery log poisoned").push((step, msg.clone()));
        }
    }
    mailboxes[to].lock().expect("mailbox poisoned").push((from, msg));
}

fn run_threaded<W: Worker>(
    workers: Vec<W>,
    cost: &CostModel,
    faults: Option<&FaultConfig>,
    pool: Option<&dcer_pool::WorkPool>,
) -> Result<(Vec<W>, BspStats), BspAbort> {
    let n = workers.len();
    let wall = Instant::now();

    // Sharded mailboxes: worker threads deposit directly into the
    // recipient's slot — no coordinator touches payloads. Entries carry the
    // sender so the drain can close each batch's `bsp.send` flow edge.
    let mailboxes: Vec<Mailbox<W::Msg>> = (0..n).map(|_| Mutex::new(Vec::new())).collect();
    let barrier = Barrier::new(n);
    let delivered = AtomicU64::new(0);
    let halt = AtomicBool::new(false);
    let ft_state: Option<ThreadedFt<W::Msg>> = faults.map(|cfg| {
        let replayable = !cfg.plan.is_empty();
        ThreadedFt {
            cfg,
            store: CheckpointStore::new(n, cfg.checkpoint_dir.clone()),
            logs: if replayable {
                (0..n).map(|_| Mutex::new(Vec::new())).collect()
            } else {
                Vec::new()
            },
            replayable,
            in_flight: AtomicU64::new(0),
            aborted: AtomicBool::new(false),
            abort_reason: Mutex::new(None),
        }
    });

    let worker_tasks: Vec<_> = workers
        .into_iter()
        .enumerate()
        .map(|(me, mut w)| {
            let mailboxes = &mailboxes;
            let barrier = &barrier;
            let delivered = &delivered;
            let halt = &halt;
            let ft = ft_state.as_ref();
            // Open the spawn flow edge on the calling thread's track: it
            // links partitioning/fleet-building to each worker's first
            // superstep in the span graph.
            dcer_obs::flow_begin("bsp.spawn", spawn_flow_id(me));
            move || {
                // On the pool the OS thread is a reused `pool-{i}` (or the
                // caller itself); redirect this worker's events onto a
                // dedicated `worker-{me}` track so the profile renders one
                // row per logical worker in every dispatch mode. Close the
                // spawn edge onto that track.
                let _track =
                    dcer_obs::redirect_thread_track(dcer_obs::alloc_track(&format!("worker-{me}")));
                dcer_obs::flow_end("bsp.spawn", spawn_flow_id(me));
                let mut log = ShardLog::default();
                let mut inbox: Vec<W::Msg> = Vec::new();
                // This thread's in-flight messages (it is the sender).
                let mut pending: Vec<PendingSend<W::Msg>> = Vec::new();
                let mut first = true;
                let mut step = 0u64;
                loop {
                    let span = dcer_obs::span(step_span_name(first)).with_arg("step", step);
                    let t0 = Instant::now();
                    let mut stall_secs = 0.0f64;
                    let out = if let Some(ft) = ft {
                        let stall = ft.cfg.plan.stall_millis(me, step);
                        let crashed = ft.cfg.plan.crashed(me, step);
                        let failed = crashed
                            || stall.is_some_and(|ms| ms as f64 / 1e3 > ft.cfg.stall_timeout_secs);
                        if crashed {
                            log.recovery.crashes += 1;
                            dcer_obs::instant("bsp.fault.crash");
                        }
                        if stall.is_some() {
                            log.recovery.stalls += 1;
                            dcer_obs::instant("bsp.fault.stall");
                        }
                        if failed {
                            inbox.clear(); // lost with the worker
                            let ckpt = ft.store.latest(me);
                            let mut out = w.restore(ckpt.as_ref().map(|(_, m)| m));
                            // Peers may already be depositing for the
                            // exchange of this very step; the `< step`
                            // filter keeps those for normal consumption.
                            let replay: Vec<W::Msg> = {
                                let guard = ft.logs[me].lock().expect("delivery log poisoned");
                                guard
                                    .iter()
                                    .filter(|(s, _)| *s < step)
                                    .map(|(_, m)| m.clone())
                                    .collect()
                            };
                            log.recovery.replayed_batches += replay.len() as u64;
                            log.recovery.replayed_facts +=
                                replay.iter().map(|m| m.unit_count() as u64).sum::<u64>();
                            log.recovery.recoveries += 1;
                            dcer_obs::instant("bsp.recovery.restore");
                            out.extend(w.superstep(replay));
                            out
                        } else {
                            let out = if first {
                                w.initial()
                            } else {
                                w.superstep(std::mem::take(&mut inbox))
                            };
                            if let Some(ms) = stall {
                                stall_secs = ms as f64 / 1e3;
                            }
                            out
                        }
                    } else if first {
                        w.initial()
                    } else {
                        w.superstep(std::mem::take(&mut inbox))
                    };
                    first = false;
                    if let Some(ft) = ft {
                        if ft.cfg.checkpoint_interval > 0
                            && step.is_multiple_of(ft.cfg.checkpoint_interval)
                        {
                            let c0 = dcer_obs::enabled().then(Instant::now);
                            if let Some(snap) = w.snapshot() {
                                log.recovery.checkpoints += 1;
                                log.recovery.checkpoint_facts += snap.unit_count() as u64;
                                log.recovery.checkpoint_bytes += snap.size_bytes() as u64;
                                ft.store.put(me, step, snap);
                                if ft.replayable {
                                    ft.logs[me]
                                        .lock()
                                        .expect("delivery log poisoned")
                                        .retain(|(s, _)| *s >= step);
                                }
                            }
                            if let Some(c0) = c0 {
                                dcer_obs::histogram_record(
                                    "bsp.checkpoint_ns",
                                    c0.elapsed().as_nanos() as u64,
                                );
                            }
                        }
                    }
                    log.compute_secs.push(t0.elapsed().as_secs_f64() + stall_secs);
                    drop(span);
                    // The exchange span covers deposit, barrier wait (time
                    // spent blocked on stragglers), and inbox drain.
                    let exchange = dcer_obs::span("exchange").with_arg("step", step);
                    if let Some(ft) = ft {
                        let mut later = Vec::new();
                        for p in pending.drain(..) {
                            if p.due > step {
                                later.push(p);
                                continue;
                            }
                            ft.in_flight.fetch_sub(1, Ordering::Relaxed);
                            if !p.retry {
                                deposit(
                                    p.from,
                                    p.to,
                                    p.msg,
                                    step,
                                    &mut log,
                                    mailboxes,
                                    Some(ft),
                                    delivered,
                                );
                                continue;
                            }
                            log.recovery.retries += 1;
                            match classify_send(
                                ft.cfg,
                                p.from,
                                p.to,
                                step,
                                p.attempts,
                                &mut log.recovery,
                            ) {
                                SendOutcome::Deliver => deposit(
                                    p.from,
                                    p.to,
                                    p.msg,
                                    step,
                                    &mut log,
                                    mailboxes,
                                    Some(ft),
                                    delivered,
                                ),
                                SendOutcome::DeliverTwice => {
                                    deposit(
                                        p.from,
                                        p.to,
                                        p.msg.clone(),
                                        step,
                                        &mut log,
                                        mailboxes,
                                        Some(ft),
                                        delivered,
                                    );
                                    deposit(
                                        p.from,
                                        p.to,
                                        p.msg,
                                        step,
                                        &mut log,
                                        mailboxes,
                                        Some(ft),
                                        delivered,
                                    );
                                }
                                SendOutcome::Delayed(due) => {
                                    ft.in_flight.fetch_add(1, Ordering::Relaxed);
                                    later.push(PendingSend {
                                        from: p.from,
                                        to: p.to,
                                        msg: p.msg,
                                        attempts: p.attempts,
                                        due,
                                        retry: false,
                                    });
                                }
                                SendOutcome::Retry(attempts, due) => {
                                    ft.in_flight.fetch_add(1, Ordering::Relaxed);
                                    later.push(PendingSend {
                                        from: p.from,
                                        to: p.to,
                                        msg: p.msg,
                                        attempts,
                                        due,
                                        retry: true,
                                    });
                                }
                                SendOutcome::Exhausted => {
                                    ft.flag_abort(exhausted_reason(p.from, p.to, p.attempts, step));
                                }
                            }
                        }
                        pending = later;
                        for (to, msg) in out {
                            if to == me {
                                continue; // self-routes are free and filtered
                            }
                            assert!(to < n, "routed to nonexistent shard {to}");
                            match classify_send(ft.cfg, me, to, step, 0, &mut log.recovery) {
                                SendOutcome::Deliver => deposit(
                                    me,
                                    to,
                                    msg,
                                    step,
                                    &mut log,
                                    mailboxes,
                                    Some(ft),
                                    delivered,
                                ),
                                SendOutcome::DeliverTwice => {
                                    deposit(
                                        me,
                                        to,
                                        msg.clone(),
                                        step,
                                        &mut log,
                                        mailboxes,
                                        Some(ft),
                                        delivered,
                                    );
                                    deposit(
                                        me,
                                        to,
                                        msg,
                                        step,
                                        &mut log,
                                        mailboxes,
                                        Some(ft),
                                        delivered,
                                    );
                                }
                                SendOutcome::Delayed(due) => {
                                    ft.in_flight.fetch_add(1, Ordering::Relaxed);
                                    pending.push(PendingSend {
                                        from: me,
                                        to,
                                        msg,
                                        attempts: 0,
                                        due,
                                        retry: false,
                                    });
                                }
                                SendOutcome::Retry(attempts, due) => {
                                    ft.in_flight.fetch_add(1, Ordering::Relaxed);
                                    pending.push(PendingSend {
                                        from: me,
                                        to,
                                        msg,
                                        attempts,
                                        due,
                                        retry: true,
                                    });
                                }
                                SendOutcome::Exhausted => {
                                    ft.flag_abort(exhausted_reason(me, to, 0, step));
                                }
                            }
                        }
                    } else {
                        for (to, msg) in out {
                            if to == me {
                                continue; // self-routes are free and filtered
                            }
                            assert!(to < n, "routed to nonexistent shard {to}");
                            deposit(me, to, msg, step, &mut log, mailboxes, None, delivered);
                        }
                    }
                    {
                        // Real blocking time on stragglers — the span the
                        // critical-path analyzer charges to barrier wait.
                        let _bw = dcer_obs::span("bsp.barrier_wait").with_arg("step", step);
                        barrier.wait(); // all deposits visible
                    }

                    let received: Vec<(WorkerId, W::Msg)> =
                        std::mem::take(&mut *mailboxes[me].lock().expect("mailbox poisoned"));
                    inbox = Vec::with_capacity(received.len());
                    for (from, msg) in received {
                        // Close the causal edge the sender opened at deposit.
                        dcer_obs::flow_end("bsp.send", bsp_flow_id(step, from, me));
                        inbox.push(msg);
                    }
                    let step_recv: u64 = inbox.iter().map(|m| m.size_bytes() as u64).sum();
                    log.recv_bytes_per_step.push(step_recv);
                    log.recv_bytes += step_recv;
                    dcer_obs::histogram_record("bsp.worker_recv_bytes", step_recv);
                    let is_leader = {
                        let _bw = dcer_obs::span("bsp.barrier_wait").with_arg("step", step);
                        barrier.wait().is_leader()
                    };
                    if is_leader {
                        // Coordinator duty: quiescence detection, nothing
                        // else. A superstep that delivered nothing does NOT
                        // quiesce while retransmissions or delayed messages
                        // are still in flight (a worker may be mid-recovery).
                        let quiesced = delivered.swap(0, Ordering::Relaxed) == 0
                            && ft.is_none_or(|f| f.in_flight.load(Ordering::Relaxed) == 0);
                        let abort = ft.is_some_and(|f| f.aborted.load(Ordering::Relaxed));
                        halt.store(abort || quiesced, Ordering::Relaxed);
                    }
                    {
                        let _bw = dcer_obs::span("bsp.barrier_wait").with_arg("step", step);
                        barrier.wait(); // halt decision visible
                    }
                    drop(exchange);
                    step += 1;
                    if halt.load(Ordering::Relaxed) {
                        break;
                    }
                }
                log.absorbed = w.absorbed_duplicates();
                (w, log)
            }
        })
        .collect();

    let results: Vec<(W, ShardLog)> = match pool {
        // Barrier-coupled workers must all run concurrently, so they go to
        // the pool as a resident group: one worker per lane (the caller
        // included), overflow on temporary threads.
        Some(pool) => pool.run_resident(worker_tasks),
        None => {
            let mut slots: Vec<Option<(W, ShardLog)>> = (0..n).map(|_| None).collect();
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(n);
                for (me, task) in worker_tasks.into_iter().enumerate() {
                    let builder = std::thread::Builder::new().name(format!("worker-{me}"));
                    handles.push(builder.spawn_scoped(scope, task).expect("spawn worker thread"));
                }
                for (i, h) in handles.into_iter().enumerate() {
                    slots[i] = Some(h.join().expect("worker thread panicked"));
                }
            });
            slots.into_iter().map(|r| r.expect("worker result")).collect()
        }
    };

    let (mut final_workers, mut logs) = (Vec::with_capacity(n), Vec::with_capacity(n));
    for (w, log) in results {
        final_workers.push(w);
        logs.push(log);
    }

    let supersteps = logs.iter().map(|l| l.compute_secs.len()).max().unwrap_or(0);
    let mut stats = BspStats::new(n);
    for step in 0..supersteps {
        let durations: Vec<f64> =
            logs.iter().map(|l| l.compute_secs.get(step).copied().unwrap_or(0.0)).collect();
        let step_bytes: u64 =
            logs.iter().map(|l| l.recv_bytes_per_step.get(step).copied().unwrap_or(0)).sum();
        stats.account_step(cost, &durations, step_bytes);
    }
    for (i, log) in logs.iter().enumerate() {
        stats.batches += log.sent_batches;
        stats.messages += log.sent_units;
        stats.bytes += log.recv_bytes;
        stats.shard_bytes[i] = log.recv_bytes;
        stats.deduped_facts += log.absorbed;
        stats.recovery.add(&log.recovery);
    }
    stats.wall_secs = wall.elapsed().as_secs_f64();
    if let Some(ft) = &ft_state {
        if ft.aborted.load(Ordering::Relaxed) {
            let reason = ft
                .abort_reason
                .lock()
                .expect("abort slot poisoned")
                .take()
                .unwrap_or_else(|| "aborted".into());
            return Err(BspAbort { reason, stats: Box::new(stats) });
        }
    }
    Ok((final_workers, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy computation: a "fact" spreads max values; workers emit to every
    /// peer when their local max increases. Converges to the global max
    /// everywhere. `seed` is the worker's durable input: a crash resets
    /// `local_max` to the latest checkpoint (or the seed).
    #[derive(Debug)]
    struct MaxWorker {
        id: WorkerId,
        peers: usize,
        seed: u64,
        local_max: u64,
    }

    impl MaxWorker {
        fn broadcast(&self) -> Vec<(WorkerId, u64)> {
            (0..self.peers).filter(|&w| w != self.id).map(|w| (w, self.local_max)).collect()
        }
    }

    impl Worker for MaxWorker {
        type Msg = u64;
        fn initial(&mut self) -> Vec<(WorkerId, u64)> {
            self.broadcast()
        }
        fn superstep(&mut self, inbox: Vec<u64>) -> Vec<(WorkerId, u64)> {
            let incoming = inbox.into_iter().max().unwrap_or(0);
            if incoming > self.local_max {
                self.local_max = incoming;
                self.broadcast()
            } else {
                Vec::new()
            }
        }
        fn snapshot(&mut self) -> Option<u64> {
            Some(self.local_max)
        }
        fn restore(&mut self, checkpoint: Option<&u64>) -> Vec<(WorkerId, u64)> {
            self.local_max = checkpoint.copied().unwrap_or(self.seed);
            self.broadcast()
        }
    }

    fn fleet(maxes: &[u64]) -> Vec<MaxWorker> {
        let n = maxes.len();
        maxes
            .iter()
            .enumerate()
            .map(|(id, &m)| MaxWorker { id, peers: n, seed: m, local_max: m })
            .collect()
    }

    fn run(mode: ExecutionMode) -> (Vec<MaxWorker>, BspStats) {
        run_bsp(fleet(&[3, 17, 5, 11]), mode, &CostModel::default())
    }

    fn run_faulty(mode: ExecutionMode, cfg: &FaultConfig) -> (Vec<MaxWorker>, BspStats) {
        run_bsp_with(fleet(&[3, 17, 5, 11]), mode, &CostModel::default(), cfg)
            .expect("run should not abort")
    }

    const MODES: [ExecutionMode; 2] = [ExecutionMode::Simulated, ExecutionMode::Threaded];

    #[test]
    fn simulated_converges_to_global_max() {
        let (workers, stats) = run(ExecutionMode::Simulated);
        assert!(workers.iter().all(|w| w.local_max == 17));
        assert!(stats.supersteps >= 2);
        assert!(stats.batches > 0);
        assert_eq!(stats.bytes, stats.batches * 8);
        assert_eq!(stats.messages, stats.batches, "scalar messages carry one unit");
        assert_eq!(stats.step_max_secs.len(), stats.supersteps);
        assert_eq!(stats.shard_bytes.iter().sum::<u64>(), stats.bytes);
        assert!(stats.makespan_secs > 0.0);
    }

    #[test]
    fn threaded_converges_to_global_max() {
        let (workers, stats) = run(ExecutionMode::Threaded);
        assert!(workers.iter().all(|w| w.local_max == 17));
        assert!(stats.supersteps >= 2);
        assert_eq!(stats.worker_busy_secs.len(), 4);
        assert_eq!(stats.shard_bytes.iter().sum::<u64>(), stats.bytes);
    }

    #[test]
    fn modes_agree_on_results_and_traffic() {
        let (_, sim) = run(ExecutionMode::Simulated);
        let (_, thr) = run(ExecutionMode::Threaded);
        assert_eq!(sim.batches, thr.batches);
        assert_eq!(sim.messages, thr.messages);
        assert_eq!(sim.bytes, thr.bytes);
        assert_eq!(sim.supersteps, thr.supersteps);
    }

    #[test]
    fn quiescent_from_start_terminates_after_one_step() {
        struct Quiet;
        impl Worker for Quiet {
            type Msg = u64;
            fn initial(&mut self) -> Vec<(WorkerId, u64)> {
                Vec::new()
            }
            fn superstep(&mut self, _: Vec<u64>) -> Vec<(WorkerId, u64)> {
                unreachable!("never reached without messages")
            }
        }
        for mode in MODES {
            let (_, stats) = run_bsp(vec![Quiet, Quiet], mode, &CostModel::default());
            assert_eq!(stats.supersteps, 1, "{mode:?}");
            assert_eq!(stats.batches, 0, "{mode:?}");
        }
    }

    #[test]
    fn self_routes_are_filtered() {
        struct Selfish {
            id: WorkerId,
        }
        impl Worker for Selfish {
            type Msg = u64;
            fn initial(&mut self) -> Vec<(WorkerId, u64)> {
                vec![(self.id, 7)]
            }
            fn superstep(&mut self, inbox: Vec<u64>) -> Vec<(WorkerId, u64)> {
                assert!(inbox.is_empty(), "self-routed messages must not arrive");
                Vec::new()
            }
        }
        for mode in MODES {
            let (_, stats) =
                run_bsp(vec![Selfish { id: 0 }, Selfish { id: 1 }], mode, &CostModel::default());
            assert_eq!(stats.batches, 0, "{mode:?}: self-deliveries never count");
            assert_eq!(stats.supersteps, 1, "{mode:?}");
        }
    }

    #[test]
    fn communication_cost_enters_makespan() {
        let free = CostModel { secs_per_byte: 0.0, barrier_secs: 0.0 };
        let costly = CostModel { secs_per_byte: 1e-3, barrier_secs: 0.0 };
        let (_, a) = run_bsp(fleet(&[3, 17]), ExecutionMode::Simulated, &free);
        let (_, b) = run_bsp(fleet(&[3, 17]), ExecutionMode::Simulated, &costly);
        assert!(b.makespan_secs > a.makespan_secs);
    }

    #[test]
    fn stats_serialize_to_json() {
        let (_, stats) = run(ExecutionMode::Simulated);
        let j = serde_json::to_value(&stats);
        assert_eq!(j["supersteps"], stats.supersteps);
        assert!(!j["shard_bytes"].is_null());
        assert_eq!(j["recovery"]["crashes"], 0u64);
    }

    #[test]
    fn checkpointing_only_run_matches_plain_stats() {
        for mode in MODES {
            let (_, plain) = run(mode);
            let (workers, ckpt) = run_faulty(mode, &FaultConfig::checkpointing());
            assert!(workers.iter().all(|w| w.local_max == 17), "{mode:?}");
            assert_eq!(plain.supersteps, ckpt.supersteps, "{mode:?}");
            assert_eq!(plain.batches, ckpt.batches, "{mode:?}");
            assert_eq!(plain.bytes, ckpt.bytes, "{mode:?}");
            assert_eq!(ckpt.recovery.checkpoints, 4 * ckpt.supersteps as u64, "{mode:?}");
            assert_eq!(ckpt.recovery.crashes, 0, "{mode:?}");
        }
    }

    #[test]
    fn crash_recovers_from_checkpoint() {
        for mode in MODES {
            for step in 0..3 {
                let cfg = FaultConfig::with_plan(FaultPlan::crash(1, step));
                let (workers, stats) = run_faulty(mode, &cfg);
                assert!(
                    workers.iter().all(|w| w.local_max == 17),
                    "{mode:?} crash 1@{step}: {:?}",
                    workers.iter().map(|w| w.local_max).collect::<Vec<_>>()
                );
                assert_eq!(stats.recovery.crashes, 1, "{mode:?} crash 1@{step}");
                assert_eq!(stats.recovery.recoveries, 1, "{mode:?} crash 1@{step}");
            }
        }
    }

    #[test]
    fn dropped_delivery_is_retried_and_converges() {
        let plan = FaultPlan::parse("drop 1->0@0").unwrap();
        for mode in MODES {
            let (workers, stats) = run_faulty(mode, &FaultConfig::with_plan(plan.clone()));
            assert!(workers.iter().all(|w| w.local_max == 17), "{mode:?}");
            assert_eq!(stats.recovery.dropped_batches, 1, "{mode:?}");
            assert_eq!(stats.recovery.retries, 1, "{mode:?}");
        }
    }

    #[test]
    fn delayed_delivery_keeps_run_alive_until_it_lands() {
        // Regression (quiescence vs in-flight messages): with only two
        // workers and the one useful message delayed 3 steps, nothing is
        // delivered at steps 1 and 2. The old halt rule (delivered == 0)
        // would terminate there and worker 0 would finish with 3 ≠ 17.
        let plan = FaultPlan::parse("delay 1->0@0+3").unwrap();
        for mode in MODES {
            let (workers, stats) = run_bsp_with(
                fleet(&[3, 17]),
                mode,
                &CostModel::default(),
                &FaultConfig::with_plan(plan.clone()),
            )
            .expect("run should not abort");
            assert!(workers.iter().all(|w| w.local_max == 17), "{mode:?}");
            assert!(stats.supersteps > 3, "{mode:?}: must outlive the delay window");
            assert_eq!(stats.recovery.delayed_batches, 1, "{mode:?}");
        }
    }

    #[test]
    fn duplicate_delivery_counts_twice_and_converges() {
        let plan = FaultPlan::parse("dup 1->0@0").unwrap();
        for mode in MODES {
            let (_, plain) = run(mode);
            let (workers, stats) = run_faulty(mode, &FaultConfig::with_plan(plan.clone()));
            assert!(workers.iter().all(|w| w.local_max == 17), "{mode:?}");
            assert_eq!(stats.recovery.duplicated_batches, 1, "{mode:?}");
            assert_eq!(stats.batches, plain.batches + 1, "{mode:?}");
        }
    }

    #[test]
    fn stall_within_timeout_only_slows_the_step() {
        let plan = FaultPlan::parse("stall 1@1=10").unwrap();
        for mode in MODES {
            let (workers, stats) = run_faulty(mode, &FaultConfig::with_plan(plan.clone()));
            assert!(workers.iter().all(|w| w.local_max == 17), "{mode:?}");
            assert_eq!(stats.recovery.stalls, 1, "{mode:?}");
            assert_eq!(stats.recovery.recoveries, 0, "{mode:?}: 10ms < 50ms timeout");
            assert!(stats.step_max_secs[1] >= 0.01, "{mode:?}: stall enters busy time");
        }
    }

    #[test]
    fn stall_past_timeout_is_crash_equivalent() {
        let plan = FaultPlan::parse("stall 1@1=200").unwrap();
        for mode in MODES {
            let (workers, stats) = run_faulty(mode, &FaultConfig::with_plan(plan.clone()));
            assert!(workers.iter().all(|w| w.local_max == 17), "{mode:?}");
            assert_eq!(stats.recovery.stalls, 1, "{mode:?}");
            assert_eq!(stats.recovery.recoveries, 1, "{mode:?}: 200ms > 50ms timeout");
            assert_eq!(stats.recovery.crashes, 0, "{mode:?}");
        }
    }

    #[test]
    fn exhausted_retries_abort_with_stats() {
        // Backoff schedule for a message first dropped at step 0 with base
        // 1: retries land at steps 1, 3, 7 — drop them all to exhaust the
        // default budget of 3. The run must stay alive between retries
        // (nothing else is in flight) and then abort, not hang.
        let plan = FaultPlan::parse("drop 1->0@0; drop 1->0@1; drop 1->0@3; drop 1->0@7").unwrap();
        for mode in MODES {
            let err = run_bsp_with(
                fleet(&[3, 17]),
                mode,
                &CostModel::default(),
                &FaultConfig::with_plan(plan.clone()),
            )
            .expect_err("retry budget must exhaust");
            assert!(err.reason.contains("retries exhausted"), "{mode:?}: {}", err.reason);
            assert_eq!(err.stats.recovery.dropped_batches, 4, "{mode:?}");
            assert_eq!(err.stats.recovery.retries, 3, "{mode:?}");
        }
    }
}
