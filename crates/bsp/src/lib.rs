//! A Bulk Synchronous Parallel (BSP [63]) runtime for the fixpoint model of
//! Section III-B: `n` workers plus a master `P₀`, proceeding in supersteps.
//! Each superstep every worker consumes its inbox and emits new facts; the
//! master unions and routes them; the computation terminates at global
//! quiescence (`ΔΓᵢ = ∅` for all `i`).
//!
//! Two execution modes (see `DESIGN.md` §5 — the paper ran on a 32-machine
//! cluster, this library runs anywhere):
//!
//! - [`ExecutionMode::Threaded`]: every worker is a real OS thread
//!   communicating over crossbeam channels — validates the algorithms under
//!   true concurrency.
//! - [`ExecutionMode::Simulated`]: workers run sequentially while the
//!   runtime records each worker's busy time per superstep; the *simulated
//!   parallel time* (makespan) is `Σ_steps max_worker(busy)` plus a
//!   configurable per-byte communication cost. This measures exactly the
//!   quantities parallel scalability (Theorem 7) is about, independent of
//!   how many physical cores the host has.

use std::time::Instant;

/// Worker index within a run.
pub type WorkerId = usize;

/// A BSP worker. `initial` is the partial-evaluation superstep (`A` in the
/// paper); `superstep` is the incremental step (`A_Δ`).
pub trait Worker: Send {
    /// The message type exchanged via the master.
    type Msg: Send + Clone;

    /// Superstep 0: compute local results from the worker's fragment.
    fn initial(&mut self) -> Vec<Self::Msg>;

    /// Superstep r ≥ 1: incorporate routed messages, return new local
    /// results. Returning an empty vector signals local quiescence.
    fn superstep(&mut self, inbox: Vec<Self::Msg>) -> Vec<Self::Msg>;
}

/// The master `P₀`: receives every worker's new facts and decides which
/// workers must see them next superstep.
pub trait Master<M>: Send {
    /// Route messages emitted by worker `from`. Deliveries to `from` itself
    /// are allowed (self-routing is filtered by the runtime).
    fn route(&mut self, from: WorkerId, msgs: Vec<M>) -> Vec<(WorkerId, M)>;
}

/// How to execute the workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionMode {
    /// Sequential execution with per-worker time accounting (simulated
    /// cluster).
    Simulated,
    /// One OS thread per worker.
    Threaded,
}

/// Cost model for the simulated cluster.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Seconds per byte routed between workers (e.g. `8e-8` ≈ 100 Mbps as
    /// in the paper's cluster). Zero ignores communication.
    pub secs_per_byte: f64,
    /// Fixed per-superstep synchronization barrier cost in seconds.
    pub barrier_secs: f64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel { secs_per_byte: 8e-8, barrier_secs: 1e-4 }
    }
}

/// Statistics of one BSP run.
#[derive(Debug, Clone, Default)]
pub struct BspStats {
    /// Number of supersteps executed (including superstep 0).
    pub supersteps: usize,
    /// Total messages routed worker→worker (via the master).
    pub messages: u64,
    /// Total bytes routed (per the `msg_bytes` callback).
    pub bytes: u64,
    /// Per superstep: the maximum single-worker busy time (seconds).
    pub step_max_secs: Vec<f64>,
    /// Per superstep: the sum of worker busy times (seconds).
    pub step_total_secs: Vec<f64>,
    /// Per worker: total busy seconds across supersteps.
    pub worker_busy_secs: Vec<f64>,
    /// Simulated parallel time: Σ max-per-step + communication + barriers.
    pub makespan_secs: f64,
    /// Total compute across all workers (the sequential-equivalent work).
    pub total_compute_secs: f64,
    /// Wall-clock time of the whole run.
    pub wall_secs: f64,
}

/// Run a BSP computation to global quiescence. `msg_bytes` sizes messages
/// for communication accounting. Returns the workers (with their final
/// state) and the run statistics.
pub fn run_bsp<W: Worker>(
    workers: Vec<W>,
    master: &mut dyn Master<W::Msg>,
    mode: ExecutionMode,
    cost: &CostModel,
    msg_bytes: impl Fn(&W::Msg) -> usize + Send + Sync,
) -> (Vec<W>, BspStats) {
    match mode {
        ExecutionMode::Simulated => run_simulated(workers, master, cost, msg_bytes),
        ExecutionMode::Threaded => run_threaded(workers, master, cost, msg_bytes),
    }
}

fn account_step<M>(
    stats: &mut BspStats,
    cost: &CostModel,
    durations: &[f64],
    deliveries_bytes: u64,
    deliveries_count: u64,
) {
    let max = durations.iter().copied().fold(0.0, f64::max);
    let total: f64 = durations.iter().sum();
    stats.step_max_secs.push(max);
    stats.step_total_secs.push(total);
    for (w, d) in durations.iter().enumerate() {
        stats.worker_busy_secs[w] += d;
    }
    stats.supersteps += 1;
    stats.messages += deliveries_count;
    stats.bytes += deliveries_bytes;
    stats.makespan_secs +=
        max + cost.barrier_secs + deliveries_bytes as f64 * cost.secs_per_byte;
    stats.total_compute_secs += total;
    let _ = std::marker::PhantomData::<M>;
}

fn run_simulated<W: Worker>(
    mut workers: Vec<W>,
    master: &mut dyn Master<W::Msg>,
    cost: &CostModel,
    msg_bytes: impl Fn(&W::Msg) -> usize,
) -> (Vec<W>, BspStats) {
    let n = workers.len();
    let wall = Instant::now();
    let mut stats = BspStats { worker_busy_secs: vec![0.0; n], ..Default::default() };
    let mut inboxes: Vec<Vec<W::Msg>> = (0..n).map(|_| Vec::new()).collect();
    let mut first = true;
    loop {
        let mut durations = vec![0.0f64; n];
        let mut outputs: Vec<Vec<W::Msg>> = Vec::with_capacity(n);
        for (i, w) in workers.iter_mut().enumerate() {
            let inbox = std::mem::take(&mut inboxes[i]);
            let t0 = Instant::now();
            let out = if first { w.initial() } else { w.superstep(inbox) };
            durations[i] = t0.elapsed().as_secs_f64();
            outputs.push(out);
        }
        first = false;
        let mut dbytes = 0u64;
        let mut dcount = 0u64;
        let mut any = false;
        for (i, out) in outputs.into_iter().enumerate() {
            if out.is_empty() {
                continue;
            }
            for (to, msg) in master.route(i, out) {
                if to == i {
                    continue;
                }
                dbytes += msg_bytes(&msg) as u64;
                dcount += 1;
                inboxes[to].push(msg);
                any = true;
            }
        }
        account_step::<W::Msg>(&mut stats, cost, &durations, dbytes, dcount);
        if !any {
            break;
        }
    }
    stats.wall_secs = wall.elapsed().as_secs_f64();
    (workers, stats)
}

fn run_threaded<W: Worker>(
    workers: Vec<W>,
    master: &mut dyn Master<W::Msg>,
    cost: &CostModel,
    msg_bytes: impl Fn(&W::Msg) -> usize + Send + Sync,
) -> (Vec<W>, BspStats)
where
    W::Msg: Send,
{
    use crossbeam::channel;
    let n = workers.len();
    let wall = Instant::now();
    let mut stats = BspStats { worker_busy_secs: vec![0.0; n], ..Default::default() };

    // Channels: master -> worker (inbox or stop), worker -> master (output).
    let mut to_workers = Vec::with_capacity(n);
    let (out_tx, out_rx) = channel::unbounded::<(WorkerId, Vec<W::Msg>, f64)>();

    let result = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n);
        for (i, mut w) in workers.into_iter().enumerate() {
            let (tx, rx) = channel::unbounded::<Option<Vec<W::Msg>>>();
            to_workers.push(tx);
            let out_tx = out_tx.clone();
            handles.push(scope.spawn(move |_| {
                let mut first = true;
                while let Ok(Some(inbox)) = rx.recv() {
                    let t0 = Instant::now();
                    let out = if first { w.initial() } else { w.superstep(inbox) };
                    first = false;
                    out_tx
                        .send((i, out, t0.elapsed().as_secs_f64()))
                        .expect("master alive");
                }
                w
            }));
        }
        drop(out_tx);

        let mut inboxes: Vec<Vec<W::Msg>> = (0..n).map(|_| Vec::new()).collect();
        loop {
            for (i, tx) in to_workers.iter().enumerate() {
                tx.send(Some(std::mem::take(&mut inboxes[i]))).expect("worker alive");
            }
            let mut durations = vec![0.0f64; n];
            let mut outputs: Vec<Option<Vec<W::Msg>>> = (0..n).map(|_| None).collect();
            for _ in 0..n {
                let (i, out, d) = out_rx.recv().expect("workers alive");
                durations[i] = d;
                outputs[i] = Some(out);
            }
            let mut dbytes = 0u64;
            let mut dcount = 0u64;
            let mut any = false;
            for (i, out) in outputs.into_iter().enumerate() {
                let out = out.unwrap();
                if out.is_empty() {
                    continue;
                }
                for (to, msg) in master.route(i, out) {
                    if to == i {
                        continue;
                    }
                    dbytes += msg_bytes(&msg) as u64;
                    dcount += 1;
                    inboxes[to].push(msg);
                    any = true;
                }
            }
            account_step::<W::Msg>(&mut stats, cost, &durations, dbytes, dcount);
            if !any {
                break;
            }
        }
        for tx in &to_workers {
            tx.send(None).expect("worker alive");
        }
        handles.into_iter().map(|h| h.join().expect("worker thread")).collect::<Vec<W>>()
    })
    .expect("bsp scope");

    stats.wall_secs = wall.elapsed().as_secs_f64();
    (result, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy computation: each worker holds a set of ints; a "fact" spreads
    /// max values; workers emit when their local max increases. Converges
    /// to the global max everywhere.
    struct MaxWorker {
        local_max: u64,
    }
    impl Worker for MaxWorker {
        type Msg = u64;
        fn initial(&mut self) -> Vec<u64> {
            vec![self.local_max]
        }
        fn superstep(&mut self, inbox: Vec<u64>) -> Vec<u64> {
            let incoming = inbox.into_iter().max().unwrap_or(0);
            if incoming > self.local_max {
                self.local_max = incoming;
                vec![self.local_max]
            } else {
                Vec::new()
            }
        }
    }

    /// Broadcast master: every message goes to every other worker.
    struct Broadcast {
        n: usize,
    }
    impl Master<u64> for Broadcast {
        fn route(&mut self, _from: WorkerId, msgs: Vec<u64>) -> Vec<(WorkerId, u64)> {
            let mut out = Vec::new();
            for m in msgs {
                for w in 0..self.n {
                    out.push((w, m));
                }
            }
            out
        }
    }

    fn run(mode: ExecutionMode) -> (Vec<MaxWorker>, BspStats) {
        let workers: Vec<MaxWorker> =
            [3u64, 17, 5, 11].into_iter().map(|m| MaxWorker { local_max: m }).collect();
        let mut master = Broadcast { n: 4 };
        run_bsp(workers, &mut master, mode, &CostModel::default(), |_| 8)
    }

    #[test]
    fn simulated_converges_to_global_max() {
        let (workers, stats) = run(ExecutionMode::Simulated);
        assert!(workers.iter().all(|w| w.local_max == 17));
        assert!(stats.supersteps >= 2);
        assert!(stats.messages > 0);
        assert_eq!(stats.bytes, stats.messages * 8);
        assert_eq!(stats.step_max_secs.len(), stats.supersteps);
        assert!(stats.makespan_secs > 0.0);
        assert!(stats.makespan_secs <= stats.total_compute_secs + 1.0);
    }

    #[test]
    fn threaded_converges_to_global_max() {
        let (workers, stats) = run(ExecutionMode::Threaded);
        assert!(workers.iter().all(|w| w.local_max == 17));
        assert!(stats.supersteps >= 2);
        assert_eq!(stats.worker_busy_secs.len(), 4);
    }

    #[test]
    fn modes_agree_on_results_and_messages() {
        let (_, sim) = run(ExecutionMode::Simulated);
        let (_, thr) = run(ExecutionMode::Threaded);
        assert_eq!(sim.messages, thr.messages);
        assert_eq!(sim.supersteps, thr.supersteps);
    }

    #[test]
    fn quiescent_from_start_terminates_after_one_step() {
        struct Quiet;
        impl Worker for Quiet {
            type Msg = u64;
            fn initial(&mut self) -> Vec<u64> {
                Vec::new()
            }
            fn superstep(&mut self, _: Vec<u64>) -> Vec<u64> {
                unreachable!("never reached without messages")
            }
        }
        let mut master = Broadcast { n: 2 };
        let (_, stats) = run_bsp(
            vec![Quiet, Quiet],
            &mut master,
            ExecutionMode::Simulated,
            &CostModel::default(),
            |_| 0,
        );
        assert_eq!(stats.supersteps, 1);
        assert_eq!(stats.messages, 0);
    }

    #[test]
    fn self_routes_are_filtered() {
        struct SelfMaster;
        impl Master<u64> for SelfMaster {
            fn route(&mut self, from: WorkerId, msgs: Vec<u64>) -> Vec<(WorkerId, u64)> {
                msgs.into_iter().map(|m| (from, m)).collect()
            }
        }
        let workers = vec![MaxWorker { local_max: 1 }, MaxWorker { local_max: 2 }];
        let (_, stats) = run_bsp(
            workers,
            &mut SelfMaster,
            ExecutionMode::Simulated,
            &CostModel::default(),
            |_| 8,
        );
        assert_eq!(stats.messages, 0, "self-deliveries never count");
        assert_eq!(stats.supersteps, 1);
    }

    #[test]
    fn communication_cost_enters_makespan() {
        let free = CostModel { secs_per_byte: 0.0, barrier_secs: 0.0 };
        let costly = CostModel { secs_per_byte: 1e-3, barrier_secs: 0.0 };
        let workers = |_| -> Vec<MaxWorker> {
            [3u64, 17].into_iter().map(|m| MaxWorker { local_max: m }).collect()
        };
        let (_, a) =
            run_bsp(workers(()), &mut Broadcast { n: 2 }, ExecutionMode::Simulated, &free, |_| 100);
        let (_, b) = run_bsp(
            workers(()),
            &mut Broadcast { n: 2 },
            ExecutionMode::Simulated,
            &costly,
            |_| 100,
        );
        assert!(b.makespan_secs > a.makespan_secs);
    }
}
