//! Superstep-boundary checkpoint storage.
//!
//! A [`CheckpointStore`] keeps the most recent `(superstep, snapshot)`
//! pair per worker. Snapshots are whatever the [`crate::Worker`] returns
//! from `snapshot()` — for DMatch shards that is a `DeltaBatch` carrying
//! the validated-fact frontier plus one spanning `eq` fact per cluster
//! member, which is enough to rebuild the union-find `E_id` state.
//!
//! Storage is in-memory (per-worker `Mutex` slots, lock-free between
//! workers). When constructed with a directory and the message type
//! implements [`crate::Message::encode`], every `put` also spills the
//! snapshot to `<dir>/worker-<i>.ckpt` as an 8-byte little-endian
//! superstep followed by the encoded payload, so a later process can
//! [`CheckpointStore::load_from_disk`].

use std::path::PathBuf;
use std::sync::Mutex;

use crate::{Message, WorkerId};

/// Latest-checkpoint-per-worker store shared by all workers of one run.
pub struct CheckpointStore<M> {
    slots: Vec<Mutex<Option<(u64, M)>>>,
    dir: Option<PathBuf>,
}

impl<M: Message> CheckpointStore<M> {
    /// A store for `workers` workers. When `dir` is given it is created
    /// eagerly; checkpoints spill there if the message type supports
    /// encoding (I/O errors degrade to memory-only, never fail the run).
    pub fn new(workers: usize, dir: Option<PathBuf>) -> CheckpointStore<M> {
        if let Some(d) = &dir {
            let _ = std::fs::create_dir_all(d);
        }
        CheckpointStore { slots: (0..workers).map(|_| Mutex::new(None)).collect(), dir }
    }

    fn path(&self, worker: WorkerId) -> Option<PathBuf> {
        self.dir.as_ref().map(|d| d.join(format!("worker-{worker}.ckpt")))
    }

    /// Record `worker`'s snapshot at `step`, replacing any older one.
    pub fn put(&self, worker: WorkerId, step: u64, snapshot: M) {
        // `encode` must stay behind the `dir` check: it serializes the
        // whole snapshot, which memory-only stores never pay for.
        if let Some(path) = self.path(worker) {
            if let Some(bytes) = snapshot.encode() {
                let mut record = Vec::with_capacity(8 + bytes.len());
                record.extend_from_slice(&step.to_le_bytes());
                record.extend_from_slice(&bytes);
                let _ = std::fs::write(path, record);
            }
        }
        *self.slots[worker].lock().unwrap() = Some((step, snapshot));
    }

    /// The most recent checkpoint for `worker`, if any. Cloning is cheap
    /// for `Arc`-backed messages such as `DeltaBatch`.
    pub fn latest(&self, worker: WorkerId) -> Option<(u64, M)> {
        self.slots[worker].lock().unwrap().clone()
    }

    /// The superstep of `worker`'s most recent checkpoint.
    pub fn latest_step(&self, worker: WorkerId) -> Option<u64> {
        self.slots[worker].lock().unwrap().as_ref().map(|(s, _)| *s)
    }

    /// Read `worker`'s spilled checkpoint back from disk (requires the
    /// store to have a directory and the message type to decode).
    pub fn load_from_disk(&self, worker: WorkerId) -> Option<(u64, M)> {
        let bytes = std::fs::read(self.path(worker)?).ok()?;
        let (head, payload) = bytes.split_first_chunk::<8>()?;
        Some((u64::from_le_bytes(*head), M::decode(payload)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_latest_per_worker() {
        let store: CheckpointStore<u64> = CheckpointStore::new(2, None);
        assert!(store.latest(0).is_none());
        store.put(0, 1, 10);
        store.put(0, 3, 30);
        store.put(1, 2, 20);
        assert_eq!(store.latest(0), Some((3, 30)));
        assert_eq!(store.latest(1), Some((2, 20)));
        assert_eq!(store.latest_step(0), Some(3));
    }

    #[test]
    fn spills_and_reloads_encodable_messages() {
        let dir = std::env::temp_dir().join(format!("dcer-ckpt-{}", std::process::id()));
        let store: CheckpointStore<u64> = CheckpointStore::new(1, Some(dir.clone()));
        store.put(0, 5, 0xDEAD_BEEF);
        let (step, value) = store.load_from_disk(0).expect("spilled checkpoint");
        assert_eq!((step, value), (5, 0xDEAD_BEEF));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn memory_only_store_has_no_disk_side() {
        let store: CheckpointStore<u64> = CheckpointStore::new(1, None);
        store.put(0, 1, 7);
        assert!(store.load_from_disk(0).is_none());
    }
}
